"""MiddlewareChain semantics and the five built-in interceptors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.augmentation_plan import ImageAugmentationPlan, TextAugmentationPlan
from repro.serve import (
    Batcher,
    InferenceServer,
    MiddlewareChain,
    MiddlewareError,
    ModelStats,
    ObfuscationGuard,
    ObfuscationViolation,
    RateLimitExceeded,
    RateLimiter,
    RequestContext,
    ResponseCache,
    ServeMiddleware,
    Telemetry,
    ValidationError,
    Validator,
)


class Tracer(ServeMiddleware):
    """Appends hook invocations to ``metadata['trace']`` (and a shared log)."""

    def __init__(self, tag, fail_on=None, answer=None, recover=False):
        self.tag = tag
        self.fail_on = fail_on
        self.answer = answer
        self.recover = recover

    @property
    def name(self):
        return f"Tracer[{self.tag}]"

    def _mark(self, context, hook):
        context.metadata.setdefault("trace", []).append(f"{self.tag}.{hook}")
        if self.fail_on == hook:
            raise MiddlewareError(f"{self.tag} failed in {hook}")

    def on_request(self, context):
        self._mark(context, "request")
        if self.answer is not None:
            context.response = np.asarray(self.answer)

    def on_batch(self, batch):
        for context in batch.contexts:
            context.metadata.setdefault("trace", []).append(f"{self.tag}.batch")

    def on_response(self, context):
        self._mark(context, "response")

    def on_error(self, context):
        context.metadata.setdefault("trace", []).append(f"{self.tag}.error")
        if self.recover:
            context.error = None
            context.response = np.asarray(-1.0)


def run_one(chain, context, result=42.0):
    def run_model(pending):
        for ctx in pending:
            ctx.metadata.setdefault("trace", []).append("model")
            ctx.response = np.asarray(result)

    chain.execute(context, run_model)
    return context


def make_context(model_id="m", sample=None, **kwargs):
    sample = np.zeros(3, dtype=np.float32) if sample is None else sample
    return RequestContext(model_id=model_id, sample=sample, **kwargs)


class TestChainSemantics:
    def test_registration_order_is_descent_order_and_unwind_reverses(self):
        chain = MiddlewareChain([Tracer("a"), Tracer("b")])
        context = run_one(chain, make_context())
        assert context.metadata["trace"] == [
            "a.request",
            "b.request",
            "a.batch",
            "b.batch",
            "model",
            "b.response",
            "a.response",
        ]
        assert np.asarray(context.response) == 42.0

    def test_short_circuit_skips_inner_middlewares_and_model(self):
        chain = MiddlewareChain([Tracer("a"), Tracer("b", answer=7.0), Tracer("c")])
        context = run_one(chain, make_context())
        assert context.metadata["trace"] == [
            "a.request",
            "b.request",
            "b.response",
            "a.response",
        ]
        assert context.metadata["short_circuited_by"] == "Tracer[b]"
        assert np.asarray(context.response) == 7.0
        assert context.error is None

    def test_on_request_error_skips_model_but_unwinds_outer_middlewares(self):
        chain = MiddlewareChain([Tracer("a"), Tracer("b", fail_on="request"), Tracer("c")])
        context = run_one(chain, make_context())
        # b raised, so c and the model never ran; a (outer) still observed
        # the failure via on_error + on_response.
        assert context.metadata["trace"] == [
            "a.request",
            "b.request",
            "a.error",
            "a.response",
        ]
        assert isinstance(context.error, MiddlewareError)
        assert context.response is None

    def test_on_error_may_recover(self):
        chain = MiddlewareChain(
            [Tracer("a"), Tracer("b", recover=True), Tracer("c", fail_on="request")]
        )
        context = run_one(chain, make_context())
        assert context.error is None
        assert np.asarray(context.response) == -1.0
        # a sat outside the recovery, so it saw a success on the unwind.
        assert context.metadata["trace"][-2:] == ["b.response", "a.response"]

    def test_model_failure_reaches_every_entered_middleware(self):
        chain = MiddlewareChain([Tracer("a")])

        def run_model(pending):
            raise RuntimeError("kaboom")

        context = make_context()
        chain.execute(context, run_model)
        assert context.metadata["trace"] == ["a.request", "a.batch", "a.error", "a.response"]
        assert isinstance(context.error, RuntimeError)

    def test_on_batch_sees_only_pending_contexts(self):
        chain = MiddlewareChain([Tracer("cachey", answer=1.0), Tracer("inner")])
        answered = make_context()
        # ``cachey`` answers everything, so no context stays pending and no
        # batch/model stage runs at all.
        chain.execute_batch([answered], lambda pending: None)
        assert "cachey.batch" not in answered.metadata["trace"]
        assert "model" not in answered.metadata["trace"]

    def test_execute_batch_rejects_mixed_models(self):
        chain = MiddlewareChain()
        with pytest.raises(ValueError, match="same-model"):
            chain.execute_batch([make_context("m1"), make_context("m2")], lambda pending: None)

    def test_unanswered_pending_context_becomes_error(self):
        chain = MiddlewareChain()
        context = make_context()
        chain.execute(context, lambda pending: None)  # handler forgets to answer
        assert isinstance(context.error, MiddlewareError)

    def test_hooks_are_timed_into_context(self):
        chain = MiddlewareChain([Tracer("a")])
        context = run_one(chain, make_context())
        for key in ("Tracer[a].on_request", "Tracer[a].on_response", "model", "total"):
            assert context.timings[key] >= 0.0
        assert context.timings["total"] > 0.0

    def test_batch_stage_timings_are_per_request_shares(self):
        import time as time_module

        chain = MiddlewareChain([Tracer("a")])
        contexts = [make_context() for _ in range(4)]

        def slow_model(pending):
            time_module.sleep(0.04)
            for ctx in pending:
                ctx.response = np.asarray(1.0)

        chain.execute_batch(contexts, slow_model)
        # the 40ms batch is shared: summing the per-context "model" stage
        # must reproduce the batch elapsed, not 4x it
        total_model = sum(ctx.timings["model"] for ctx in contexts)
        assert 0.03 < total_model < 0.12

    def test_add_rejects_non_middleware(self):
        with pytest.raises(TypeError):
            MiddlewareChain().add(object())

    def test_chain_introspection(self):
        first, second = Tracer("a"), Tracer("b")
        chain = MiddlewareChain([first]).add(second)
        assert len(chain) == 2
        assert bool(chain)
        assert not MiddlewareChain()
        assert chain.middlewares == (first, second)
        assert list(chain) == [first, second]

    def test_empty_batch_is_a_no_op(self):
        assert MiddlewareChain([Tracer("a")]).execute_batch([], lambda pending: None) == []

    def test_on_batch_error_fails_the_whole_batch(self):
        class BatchBomb(ServeMiddleware):
            def on_batch(self, batch):
                raise MiddlewareError("batch rejected")

        chain = MiddlewareChain([Tracer("a"), BatchBomb()])
        contexts = [make_context(), make_context()]
        chain.execute_batch(contexts, lambda pending: None)
        for context in contexts:
            assert isinstance(context.error, MiddlewareError)
            assert "model" not in context.metadata["trace"]
            # the unwind still ran for every entered middleware
            assert context.metadata["trace"][-2:] == ["a.error", "a.response"]

    def test_on_error_raising_replaces_the_error(self):
        class BadHandler(ServeMiddleware):
            def on_error(self, context):
                raise KeyError("handler bug")

        chain = MiddlewareChain([BadHandler(), Tracer("boom", fail_on="request")])
        context = run_one(chain, make_context())
        assert isinstance(context.error, KeyError)

    def test_on_response_raising_sets_the_error(self):
        chain = MiddlewareChain([Tracer("a", fail_on="response")])
        context = run_one(chain, make_context())
        assert isinstance(context.error, MiddlewareError)
        assert "failed in response" in str(context.error)

    def test_empty_chain_runs_model_directly(self):
        context = run_one(MiddlewareChain(), make_context())
        assert np.asarray(context.response) == 42.0
        assert context.error is None


class TestResponseCache:
    def test_identical_samples_hit(self):
        cache = ResponseCache(capacity=8)
        sample = np.arange(4, dtype=np.float32)
        first = run_one(MiddlewareChain([cache]), make_context(sample=sample), result=1.5)
        assert first.metadata["cache"] == "miss"
        second = run_one(MiddlewareChain([cache]), make_context(sample=sample.copy()))
        assert second.metadata["cache"] == "hit"
        assert np.asarray(second.response) == 1.5
        assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1

    def test_key_includes_model_dtype_and_shape(self):
        cache = ResponseCache(capacity=8)
        chain = MiddlewareChain([cache])
        base = np.zeros(4, dtype=np.float32)
        run_one(chain, make_context("m1", base))
        for context in (
            make_context("m2", base),  # other model
            make_context("m1", base.astype(np.float64)),  # other dtype
            make_context("m1", base.reshape(2, 2)),  # other shape
        ):
            run_one(chain, context)
            assert context.metadata["cache"] == "miss"

    def test_lru_eviction(self):
        cache = ResponseCache(capacity=2)
        chain = MiddlewareChain([cache])
        samples = [np.full(2, float(i), dtype=np.float32) for i in range(3)]
        for sample in samples:
            run_one(chain, make_context(sample=sample))
        assert cache.evictions == 1
        # sample 0 was evicted; 1 and 2 still hit.
        assert run_one(chain, make_context(sample=samples[0])).metadata["cache"] == "miss"
        assert run_one(chain, make_context(sample=samples[2])).metadata["cache"] == "hit"

    def test_errors_are_not_cached(self):
        cache = ResponseCache(capacity=8)
        chain = MiddlewareChain([cache])
        sample = np.ones(2, dtype=np.float32)

        def explode(pending):
            raise RuntimeError("no result")

        context = make_context(sample=sample)
        chain.execute(context, explode)
        assert isinstance(context.error, RuntimeError)
        assert len(cache) == 0
        assert run_one(chain, make_context(sample=sample)).metadata["cache"] == "miss"

    def test_clear(self):
        cache = ResponseCache(capacity=8)
        chain = MiddlewareChain([cache])
        run_one(chain, make_context())
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ResponseCache(capacity=0)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestRateLimiter:
    def test_bucket_drains_and_refills(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, capacity=2, clock=clock)
        chain = MiddlewareChain([limiter])
        run_one(chain, make_context())
        run_one(chain, make_context())
        rejected = run_one(chain, make_context())
        assert isinstance(rejected.error, RateLimitExceeded)
        assert rejected.error.retry_after == pytest.approx(1.0)
        assert rejected.metadata["rate_limited"] is True
        clock.now = 1.0  # one token refilled
        assert run_one(chain, make_context()).error is None
        assert limiter.stats() == {"admitted": 3, "rejected": 1, "buckets": 1, "pruned": 0}

    def test_buckets_are_per_tenant_and_model(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, capacity=1, clock=clock)
        chain = MiddlewareChain([limiter])
        assert run_one(chain, make_context("m", tenant="alice")).error is None
        assert isinstance(
            run_one(chain, make_context("m", tenant="alice")).error, RateLimitExceeded
        )
        # bob and another model each have their own bucket
        assert run_one(chain, make_context("m", tenant="bob")).error is None
        assert run_one(chain, make_context("m2", tenant="alice")).error is None

    def test_typed_error_carries_context(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=2.0, capacity=1, clock=clock)
        chain = MiddlewareChain([limiter])
        run_one(chain, make_context("lenet", tenant="t1"))
        rejected = run_one(chain, make_context("lenet", tenant="t1"))
        error = rejected.error
        assert isinstance(error, RateLimitExceeded)
        assert error.tenant == "t1" and error.model_id == "lenet"
        assert error.retry_after == pytest.approx(0.5)

    def test_tokens_probe(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, capacity=4, clock=clock)
        context = make_context()
        assert limiter.tokens(context) == 4.0
        limiter.on_request(context)
        assert limiter.tokens(context) == 3.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=0.0)
        with pytest.raises(ValueError):
            RateLimiter(rate=1.0, capacity=0.5)
        with pytest.raises(ValueError):
            RateLimiter(rate=1.0, prune_interval=0.0)

    def test_idle_buckets_are_pruned(self):
        # Without pruning, _buckets grows one entry per distinct key forever;
        # a bucket idle long enough to refill to capacity is identical to an
        # absent key and is dropped on the next sweep.
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, capacity=2, clock=clock)  # prune_interval = 2s
        chain = MiddlewareChain([limiter])
        for tenant in ("t0", "t1", "t2", "t3"):
            run_one(chain, make_context("m", tenant=tenant))
        assert limiter.stats()["buckets"] == 4
        clock.now = 10.0  # all four refilled to capacity long ago
        run_one(chain, make_context("m", tenant="fresh"))
        stats = limiter.stats()
        assert stats["pruned"] == 4
        assert stats["buckets"] == 1  # only the request that triggered the sweep

    def test_drained_buckets_survive_the_sweep(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, capacity=4, clock=clock)  # prune_interval = 4s
        chain = MiddlewareChain([limiter])
        for _ in range(4):
            run_one(chain, make_context("m", tenant="busy"))  # bucket now empty
        clock.now = 2.0  # partially refilled (2 of 4): still informative
        run_one(chain, make_context("m", tenant="other"))
        stats = limiter.stats()
        assert stats["pruned"] == 0
        assert stats["buckets"] == 2
        # The surviving bucket still enforces its partial balance.
        assert limiter.tokens(make_context("m", tenant="busy")) == pytest.approx(2.0)

    def test_prune_is_rate_limited_by_interval(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, capacity=2, clock=clock, prune_interval=100.0)
        chain = MiddlewareChain([limiter])
        run_one(chain, make_context("m", tenant="t0"))
        clock.now = 50.0  # t0 is back at capacity, but the sweep isn't due
        run_one(chain, make_context("m", tenant="t1"))
        assert limiter.stats() == {"admitted": 2, "rejected": 0, "buckets": 2, "pruned": 0}
        clock.now = 150.0
        run_one(chain, make_context("m", tenant="t2"))
        assert limiter.stats()["pruned"] == 2


class TestValidator:
    def test_shape_and_dtype_contract(self, registry):
        registry.entry("lenet").metadata.update(
            {"input_shape": [1, 28, 28], "input_dtype": "float32"}
        )
        validator = Validator(registry)
        chain = MiddlewareChain([validator])
        good = make_context("lenet", np.zeros((1, 28, 28), dtype=np.float32))
        assert run_one(chain, good).error is None

        bad_shape = make_context("lenet", np.zeros((28, 28), dtype=np.float32))
        assert isinstance(run_one(chain, bad_shape).error, ValidationError)

        bad_dtype = make_context("lenet", np.zeros((1, 28, 28), dtype=np.int64))
        assert isinstance(run_one(chain, bad_dtype).error, ValidationError)

        # float64 passes a float32 contract: the check is by kind.
        wide = make_context("lenet", np.zeros((1, 28, 28), dtype=np.float64))
        assert run_one(chain, wide).error is None

    def test_unknown_model_raises_key_error(self, registry):
        chain = MiddlewareChain([Validator(registry)])
        context = run_one(chain, make_context("missing"))
        assert isinstance(context.error, KeyError)

    def test_uncontracted_model_passes_unless_required(self, registry):
        chain = MiddlewareChain([Validator(registry)])
        context = make_context("lenet", np.zeros((99,), dtype=np.float32))
        assert run_one(chain, context).error is None

        strict = MiddlewareChain([Validator(registry, require_contract=True)])
        rejected = run_one(strict, make_context("lenet"))
        assert isinstance(rejected.error, ValidationError)


class TestTelemetry:
    def test_exports_stages_into_attached_model_stats(self):
        telemetry = Telemetry()
        stats = ModelStats(max_batch_size=4)
        chain = MiddlewareChain([telemetry, Tracer("inner")])
        context = make_context()
        context.stats = stats
        run_one(chain, context)
        stages = stats.stages()
        assert stages["request.total"]["count"] == 1
        assert stages["model"]["count"] == 1
        assert stages["Tracer[inner].on_request"]["count"] == 1
        assert stages["request.total"]["total_ms"] >= 0.0

    def test_counts_errors_and_cache_hits(self):
        telemetry = Telemetry()
        cache = ResponseCache(capacity=4)
        chain = MiddlewareChain([telemetry, cache, Tracer("boom", fail_on="request")])
        sample = np.ones(2, dtype=np.float32)
        first = make_context(sample=sample)
        run_one(chain, first)  # rejected by boom
        assert isinstance(first.error, MiddlewareError)
        local = telemetry.snapshot()["m"]["stages"]
        assert local["request.error"]["count"] == 1
        # fill the cache (remove boom), then observe a hit
        ok_chain = MiddlewareChain([telemetry, cache])
        run_one(ok_chain, make_context(sample=sample))
        run_one(ok_chain, make_context(sample=sample))
        local = telemetry.snapshot()["m"]["stages"]
        assert local["request.cache_hit"]["count"] == 1
        assert local["request.total"]["count"] == 3

    def test_snapshot_stages_flow_through_server_stats(self, registry, images):
        server = InferenceServer(
            registry,
            Batcher(max_batch_size=8),
            middleware=[Telemetry()],
        )
        server.predict_batch("lenet", list(images[:4]))
        stages = server.stats("lenet")["stages"]
        assert stages["request.total"]["count"] == 4
        assert stages["model"]["count"] == 4


def image_plan():
    # 1x2x2 original embedded in 1x3x3 augmented (positions strictly increasing)
    positions = np.array([[0, 2, 4, 6]])
    return ImageAugmentationPlan((1, 2, 2), (1, 3, 3), positions, 1.25)


def text_plan():
    return TextAugmentationPlan(3, 5, np.array([[0, 2, 4]]), 0.67)


class TestObfuscationGuard:
    def test_augmented_sample_passes(self):
        guard = ObfuscationGuard(image_plan())
        context = make_context(sample=np.zeros((1, 3, 3), dtype=np.float32))
        assert run_one(MiddlewareChain([guard]), context).error is None

    def test_raw_sample_is_rejected_with_trust_boundary_message(self):
        guard = ObfuscationGuard(image_plan())
        context = make_context(sample=np.zeros((1, 2, 2), dtype=np.float32))
        error = run_one(MiddlewareChain([guard]), context).error
        assert isinstance(error, ObfuscationViolation)
        assert "trust boundary" in str(error)

    def test_other_shapes_are_rejected(self):
        guard = ObfuscationGuard(image_plan())
        context = make_context(sample=np.zeros((1, 4, 4), dtype=np.float32))
        assert isinstance(run_one(MiddlewareChain([guard]), context).error, ObfuscationViolation)

    def test_text_plan_widths(self):
        guard = ObfuscationGuard(text_plan())
        assert guard.expected_shape == (5,)
        good = make_context(sample=np.zeros(5, dtype=np.int64))
        assert run_one(MiddlewareChain([guard]), good).error is None
        raw = make_context(sample=np.zeros(3, dtype=np.int64))
        assert isinstance(run_one(MiddlewareChain([guard]), raw).error, ObfuscationViolation)

    def test_accepts_secrets_object(self):
        class SecretsLike:
            dataset_plan = image_plan()

        guard = ObfuscationGuard(SecretsLike())
        assert guard.expected_shape == (1, 3, 3)

    def test_rejects_unknown_plan_type(self):
        with pytest.raises(TypeError):
            ObfuscationGuard(object())


class TestServerIntegration:
    def test_cache_hit_skips_model_execution(self, registry, images):
        cache = ResponseCache(capacity=16)
        server = InferenceServer(registry, Batcher(max_batch_size=8), middleware=[cache])
        first = server.predict("lenet", images[0])
        second = server.predict("lenet", images[0])
        assert np.array_equal(first, second)
        stats = server.stats("lenet")
        # only the miss reached the model: one executed batch of one request
        assert stats["requests"] == 1
        assert stats["batches"] == 1
        assert cache.stats() == {
            "size": 1,
            "capacity": 16,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "hit_rate": 0.5,
        }

    def test_rate_limited_sync_raises_and_counts_error(self, registry, images):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, capacity=1, clock=clock)
        server = InferenceServer(registry, Batcher(max_batch_size=8), middleware=[limiter])
        server.predict("lenet", images[0])
        with pytest.raises(RateLimitExceeded):
            server.predict("lenet", images[1])
        assert server.stats("lenet")["errors"] == 1

    def test_rate_limited_future_carries_typed_error(self, registry, images):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, capacity=1, clock=clock)
        server = InferenceServer(
            registry,
            Batcher(max_batch_size=8, max_wait=0.005),
            middleware=[limiter],
        )
        with server:
            futures = server.submit_many("lenet", list(images[:2]))
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(future.result(timeout=30))
                except RateLimitExceeded as error:
                    outcomes.append(error)
        rejected = [o for o in outcomes if isinstance(o, RateLimitExceeded)]
        served = [o for o in outcomes if isinstance(o, np.ndarray)]
        assert len(rejected) == 1 and len(served) == 1

    def test_partial_batch_rejection_still_serves_the_rest(self, registry, images):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, capacity=4, clock=clock)
        server = InferenceServer(
            registry,
            Batcher(max_batch_size=8, max_wait=0.01, padding="full"),
            num_workers=1,
            middleware=[limiter],
        )
        reference = [server.predict("lenet", sample) for sample in images[:4]]
        clock.now = 100.0  # refill after the sync warmup
        with server:
            futures = server.submit_many("lenet", list(images[:6]))
            results = []
            for future in futures:
                try:
                    results.append(future.result(timeout=30))
                except RateLimitExceeded:
                    results.append(None)
        served = [r for r in results if r is not None]
        assert len(served) == 4  # capacity admitted exactly 4 of the 6
        for index, result in enumerate(results[:4]):
            if result is not None:
                assert np.array_equal(result, reference[index])


class TestChainOrderingThroughServer:
    def test_order_is_observable_in_context_metadata(self, registry, images):
        traces = []

        class Probe(Tracer):
            def on_response(self, context):
                super().on_response(context)
                if self.tag == "outer":
                    traces.append(list(context.metadata["trace"]))

        server = InferenceServer(
            registry,
            Batcher(max_batch_size=8),
            middleware=[Probe("outer"), Probe("inner")],
        )
        server.predict("lenet", images[0])
        assert traces == [
            [
                "outer.request",
                "inner.request",
                "outer.batch",
                "inner.batch",
                "inner.response",
                "outer.response",
            ]
        ]


class TestStatsPartition:
    def test_unwind_error_counts_as_error_not_served_request(self, registry, images):
        class BadResponder(ServeMiddleware):
            def on_response(self, context):
                raise RuntimeError("post-execution bug")

        server = InferenceServer(
            registry, Batcher(max_batch_size=8), middleware=[BadResponder()]
        )
        with pytest.raises(RuntimeError, match="post-execution"):
            server.predict("lenet", images[0])
        stats = server.stats("lenet")
        # the request executed, but it must land in exactly one bucket
        assert stats["errors"] == 1
        assert stats["requests"] == 0


class TestCacheImmutability:
    def test_served_results_are_frozen_uniformly(self, registry, images):
        cache = ResponseCache(capacity=8)
        server = InferenceServer(registry, Batcher(max_batch_size=8), middleware=[cache])
        miss = server.predict("lenet", images[0])
        hit = server.predict("lenet", images[0])
        # miss and hit behave identically: mutation raises instead of
        # silently poisoning what every later request sees
        for result in (miss, hit):
            with pytest.raises(ValueError):
                result -= result.max()
        again = server.predict("lenet", images[0])
        assert np.array_equal(hit, again)

"""Batcher: bucket arithmetic, padding correctness, batched-vs-single equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.serve import Batcher, bucket_size

from .conftest import make_lenet


class TestBucketSize:
    def test_powers_of_two(self):
        assert bucket_size(1, 32) == 1
        assert bucket_size(2, 32) == 2
        assert bucket_size(3, 32) == 4
        assert bucket_size(5, 32) == 8
        assert bucket_size(9, 32) == 16
        assert bucket_size(17, 32) == 32

    def test_capped_at_max(self):
        assert bucket_size(33, 32) == 32
        assert bucket_size(7, 4) == 4


class TestPaddedSize:
    def test_none_mode(self):
        assert Batcher(max_batch_size=8, padding="none").padded_size(5) == 5

    def test_bucket_mode(self):
        assert Batcher(max_batch_size=8, padding="bucket").padded_size(5) == 8
        assert Batcher(max_batch_size=8, padding="bucket").padded_size(1) == 1

    def test_full_mode(self):
        assert Batcher(max_batch_size=8, padding="full").padded_size(1) == 8

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            Batcher(max_batch_size=0)
        with pytest.raises(ValueError):
            Batcher(max_wait=-1.0)
        with pytest.raises(ValueError):
            Batcher(padding="wedge")


class TestRunBatch:
    def test_padding_rows_do_not_change_real_outputs(self):
        """Padded rows are discarded and never leak into real rows' results."""
        model = make_lenet().eval()
        x = np.random.default_rng(0).standard_normal((3, 1, 28, 28)).astype(np.float32)
        full_batcher = Batcher(max_batch_size=8, padding="full")
        none_batcher = Batcher(max_batch_size=8, padding="none")
        padded = full_batcher.run_batch(model, list(x))
        with nn.no_grad():
            direct = model(nn.Tensor(np.concatenate([x, np.zeros((5, 1, 28, 28), np.float32)])))
        assert len(padded) == 3
        for index in range(3):
            assert np.array_equal(padded[index], direct.data[index])
        unpadded = none_batcher.run_batch(model, list(x))
        for got, want in zip(unpadded, padded):
            np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-6)

    def test_fixed_shape_outputs_are_bit_reproducible(self):
        """padding='full' makes per-row results independent of batch composition."""
        model = make_lenet().eval()
        rng = np.random.default_rng(1)
        x = rng.standard_normal((6, 1, 28, 28)).astype(np.float32)
        batcher = Batcher(max_batch_size=8, padding="full")
        together = batcher.run_batch(model, list(x))
        alone = [batcher.run_batch(model, [sample])[0] for sample in x]
        pairs = [batcher.run_batch(model, [x[i], x[(i + 1) % 6]])[0] for i in range(6)]
        for index in range(6):
            assert np.array_equal(together[index], alone[index])
            assert np.array_equal(together[index], pairs[index])

    def test_run_chunks_large_request_lists(self):
        model = make_lenet().eval()
        x = np.random.default_rng(2).standard_normal((11, 1, 28, 28)).astype(np.float32)
        batcher = Batcher(max_batch_size=4, padding="full")
        outputs = batcher.run(model, list(x))
        assert len(outputs) == 11
        reference = [batcher.run_batch(model, [sample])[0] for sample in x]
        for got, want in zip(outputs, reference):
            assert np.array_equal(got, want)

    def test_oversized_batch_rejected(self):
        model = make_lenet().eval()
        x = np.zeros((5, 1, 28, 28), np.float32)
        with pytest.raises(ValueError):
            Batcher(max_batch_size=4).run_batch(model, list(x))

    def test_empty_chunk(self):
        assert Batcher().run_batch(make_lenet(), []) == []

    def test_integer_batches_passed_raw(self):
        """Token-id batches must reach the model as raw integer arrays."""

        class TokenEcho(nn.Module):
            def forward(self, tokens):
                assert isinstance(tokens, np.ndarray)
                assert np.issubdtype(tokens.dtype, np.integer)
                return nn.Tensor(tokens.astype(np.float32))

        batcher = Batcher(max_batch_size=4, padding="full")
        tokens = np.arange(6, dtype=np.int64).reshape(2, 3)
        outputs = batcher.run_batch(TokenEcho(), list(tokens))
        assert np.array_equal(outputs[0], tokens[0].astype(np.float32))

    def test_multi_output_models_stack_on_leading_axis(self):
        """Augmented-style models (list outputs) yield (subnetworks, classes) slices."""

        class TwoHeads(nn.Module):
            def forward(self, inputs):
                return [inputs * 2.0, inputs * 3.0]

        batcher = Batcher(max_batch_size=4, padding="bucket")
        x = np.arange(8, dtype=np.float32).reshape(2, 4)
        outputs = batcher.run_batch(TwoHeads(), list(x))
        assert outputs[0].shape == (2, 4)
        assert np.array_equal(outputs[0][0], x[0] * 2.0)
        assert np.array_equal(outputs[1][1], x[1] * 3.0)

"""InferenceServer: sync/concurrent parity, stats, error paths, concurrency determinism."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import nn
from repro.cloud import pack_model
from repro.models import model_factory
from repro.serve import (
    Batcher,
    InferenceServer,
    ModelRegistry,
    ServerOverloaded,
    ServerStopped,
)

from .conftest import make_lenet


def bit_reproducible_server(max_batch_size: int = 8, num_workers: int = 4) -> InferenceServer:
    """A LeNet server whose batcher pads every batch to one fixed shape."""
    registry = ModelRegistry(capacity=2)
    registry.register(
        "lenet",
        pack_model(make_lenet(3), task="classification"),
        model_factory("lenet", in_channels=1, seed=3),
    )
    batcher = Batcher(max_batch_size=max_batch_size, max_wait=0.005, padding="full")
    return InferenceServer(registry, batcher, num_workers=num_workers)


class TestSyncApi:
    def test_predict_matches_direct_forward(self, server, images):
        model = make_lenet(3).eval()
        with nn.no_grad():
            want = model(nn.Tensor(images[:1])).data[0]
        got = server.predict("lenet", images[0])
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-6)

    def test_predict_batch_matches_per_sample_predict(self, server, images):
        batched = server.predict_batch("lenet", list(images[:6]))
        singles = [server.predict("lenet", sample) for sample in images[:6]]
        assert len(batched) == 6
        for got, want in zip(batched, singles):
            np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-6)

    def test_unknown_model_raises(self, server, images):
        with pytest.raises(KeyError):
            server.predict("missing", images[0])

    def test_stats_accounting(self, server, images):
        server.predict_batch("lenet", list(images[:6]))
        server.predict("lenet", images[0])
        stats = server.stats("lenet")
        assert stats["requests"] == 7
        assert stats["batches"] == 2
        assert stats["mean_batch_size"] == 3.5
        assert 0 < stats["batch_fill_ratio"] <= 1
        assert stats["p95_latency_ms"] >= stats["p50_latency_ms"] > 0
        assert server.stats()["models"]["lenet"] == stats

    def test_stats_snapshot_carries_lifecycle_and_queue_depth(self, server, images):
        """One stats() call gives placement policies queue depth + lifecycle.

        The least-loaded policy must not stitch together racy property reads;
        the combined snapshot is the satellite contract this test pins.
        """
        snapshot = server.stats()
        assert snapshot["queue_depth"] == 0
        assert snapshot["running"] is False
        assert snapshot["stopped"] is False
        with server:
            assert server.stats()["running"] is True
        snapshot = server.stats()
        assert snapshot["running"] is False
        assert snapshot["stopped"] is True


class TestConcurrentMode:
    def test_submit_requires_started_server(self, server, images):
        with pytest.raises(RuntimeError):
            server.submit("lenet", images[0])

    def test_start_stop_idempotent(self, server):
        server.start()
        server.start()
        server.stop()
        server.stop()
        assert not server.running

    def test_futures_resolve_to_batch_outputs(self, server, images):
        with server:
            futures = server.submit_many("lenet", list(images))
            results = [future.result(timeout=30) for future in futures]
        singles = [server.predict("lenet", sample) for sample in images]
        for got, want in zip(results, singles):
            np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-6)

    def test_unknown_model_fails_the_future(self, server, images):
        with server:
            future = server.submit("missing", images[0])
            with pytest.raises(KeyError):
                future.result(timeout=30)
        assert server.stats("missing")["errors"] == 1

    def test_stop_drains_pending_requests(self, registry, images):
        # One sleepy worker plus a burst of requests leaves work queued at
        # stop(); stop must serve the stragglers rather than drop them.
        server = InferenceServer(
            registry, Batcher(max_batch_size=2, max_wait=0.0), num_workers=1
        )
        server.start()
        futures = server.submit_many("lenet", list(images))
        server.stop()
        for future in futures:
            assert future.result(timeout=30).shape == (10,)

    def test_hammering_threads_get_byte_identical_results(self, images):
        """N client threads through dynamic batching == sequential calls, bitwise.

        With ``padding="full"`` every executed batch has the same shape, so
        per-row kernel behaviour cannot depend on how the scheduler coalesced
        requests — results must match the sequential reference exactly.
        """
        server = bit_reproducible_server(max_batch_size=8, num_workers=4)
        sequential = [server.predict("lenet", sample) for sample in images]

        results: dict[int, np.ndarray] = {}
        errors: list[Exception] = []
        lock = threading.Lock()

        def client(thread_index: int) -> None:
            try:
                for round_index in range(3):
                    sample_index = (thread_index * 3 + round_index) % len(images)
                    future = server.submit("lenet", images[sample_index])
                    output = future.result(timeout=30)
                    with lock:
                        previous = results.get(sample_index)
                        if previous is not None:
                            assert np.array_equal(previous, output)
                        results[sample_index] = output
            except Exception as error:  # noqa: BLE001 - surfaced to the main thread
                with lock:
                    errors.append(error)

        with server:
            threads = [threading.Thread(target=client, args=(index,)) for index in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert not errors
        assert results  # at least one sample exercised
        for sample_index, output in results.items():
            assert np.array_equal(output, sequential[sample_index]), (
                f"threaded result for sample {sample_index} differs from sequential"
            )

    def test_stop_is_idempotent_and_safe_before_start(self, server):
        server.stop()  # never started: no-op
        server.stop()
        assert not server.running
        server.start()
        server.stop()
        server.stop()  # double stop after a real run
        assert not server.running

    def test_submit_after_stop_raises_typed_error(self, server, images):
        server.start()
        server.stop()
        # ServerStopped subclasses RuntimeError, so pre-existing callers
        # catching the broad class keep working while routers match the type.
        with pytest.raises(ServerStopped, match="stopped"):
            server.submit("lenet", images[0])

    def test_submit_before_first_start_names_the_remedy(self, server, images):
        with pytest.raises(RuntimeError, match="start\\(\\)"):
            server.submit("lenet", images[0])

    def test_server_restarts_after_stop(self, server, images):
        server.start()
        first = server.submit("lenet", images[0]).result(timeout=30)
        server.stop()
        server.start()
        second = server.submit("lenet", images[0]).result(timeout=30)
        server.stop()
        np.testing.assert_allclose(first, second, rtol=1e-5, atol=1e-6)

    def test_full_queue_raises_instead_of_deadlocking(self, registry, images):
        server = InferenceServer(
            registry, Batcher(max_batch_size=2, max_wait=0.0), queue_size=2
        )
        # Simulate workers that never drain: mark running without threads.
        server._running = True
        try:
            server.submit("lenet", images[0])
            server.submit("lenet", images[1])
            with pytest.raises(ServerOverloaded, match="queue is full"):
                server.submit("lenet", images[2])
        finally:
            server._running = False

    def test_threaded_batches_actually_coalesce(self, images):
        server = bit_reproducible_server(max_batch_size=8, num_workers=1)
        with server:
            futures = server.submit_many("lenet", list(images))
            for future in futures:
                future.result(timeout=30)
        stats = server.stats("lenet")
        assert stats["requests"] == len(images)
        assert stats["batches"] < len(images), "scheduler never batched anything"

"""TOML-declared stacks on every host, plus hot-swap under load.

The acceptance pins for the declarative config layer:

* a stack built **only from TOML** (including the per-tenant privacy-budget
  stack) serves byte-identically to the equivalent imperatively-built chain
  — on a single :class:`InferenceServer`, across a :class:`ClusterRouter`,
  and over the gateway's loopback wire (the tenant riding the HELLO
  handshake is what selects the stack);
* ``swap_middleware`` on a running server under an 8-thread hammer loses
  zero in-flight requests, keeps results byte-identical, and leaves every
  privacy ledger balanced (spent == answered queries x cost);
* the typed :class:`PrivacyBudgetExceeded` survives the wire as itself.
"""

from __future__ import annotations

import threading
from concurrent.futures import wait

import numpy as np
import pytest

from repro.models import model_factory
from repro.privacy import privacy_loss
from repro.serve import (
    Batcher,
    ClusterRouter,
    GatewayServer,
    InferenceServer,
    MiddlewareChain,
    ModelRegistry,
    PrivacyBudget,
    PrivacyBudgetExceeded,
    RemoteClient,
    ReplicaWorker,
    ResponseCache,
    Telemetry,
    apply_to_cluster,
    build_dispatcher,
)
from repro.serve.middleware import config as config_module

from .conftest import lenet_bundle

pytestmark = pytest.mark.skipif(
    config_module.tomllib is None, reason="no TOML parser on this interpreter"
)

TOML = """
default_stack = "standard"

[stacks.standard]
middleware = [
    { name = "telemetry" },
    { name = "cache", capacity = 128 },
]

[stacks.premium]
extends = "standard"
middleware = [ { name = "privacy_budget", budget = 8.0, amount = 3.0 } ]

[tenants]
acme = "premium"

[cluster]
cluster_stack = "standard"
replica_stack = "standard"
"""


def imperative_premium(registry=None) -> MiddlewareChain:
    """The hand-built twin of the TOML ``premium`` stack."""
    return MiddlewareChain(
        [
            Telemetry(),
            ResponseCache(capacity=128),
            PrivacyBudget(budget=8.0, amount=3.0, registry=registry),
        ]
    )


def full_batcher() -> Batcher:
    return Batcher(max_batch_size=8, max_wait=0.002, padding="full")


def make_registry() -> ModelRegistry:
    registry = ModelRegistry(capacity=2)
    registry.register("lenet", lenet_bundle(), model_factory("lenet", in_channels=1, seed=3))
    return registry


@pytest.fixture
def samples() -> list:
    rng = np.random.default_rng(17)
    return [rng.standard_normal((1, 28, 28)).astype(np.float32) for _ in range(12)]


class TestByteParityAcrossHosts:
    def test_inference_server_toml_vs_imperative(self, samples):
        declared = InferenceServer(
            make_registry(),
            full_batcher(),
            middleware=build_dispatcher(TOML),
        )
        imperative = InferenceServer(
            make_registry(), full_batcher(), middleware=imperative_premium()
        )
        got = declared.predict_batch("lenet", samples, tenant="acme")
        want = imperative.predict_batch("lenet", samples, tenant="acme")
        for a, b in zip(got, want):
            assert a.tobytes() == b.tobytes()
        # The dispatcher really routed acme through the privacy stack.
        ledger = declared.middleware.stack("premium").middlewares[-1]
        assert ledger.spent("acme") == pytest.approx(len(samples) * privacy_loss(3.0))

    def test_concurrent_mode_matches_sync(self, samples):
        server = InferenceServer(
            make_registry(), full_batcher(), middleware=build_dispatcher(TOML)
        )
        want = [
            out.tobytes()
            for out in InferenceServer(make_registry(), full_batcher()).predict_batch(
                "lenet", samples
            )
        ]
        with server:
            futures = server.submit_many("lenet", samples, tenant="acme")
            got = [future.result(timeout=30).tobytes() for future in futures]
        assert got == want

    def test_cluster_router_toml_vs_imperative(self, samples):
        def make_router(middleware) -> ClusterRouter:
            router = ClusterRouter(
                [ReplicaWorker(f"replica-{i}", batcher=full_batcher()) for i in range(2)],
                middleware=middleware,
            )
            router.register(
                "lenet", lenet_bundle(), model_factory("lenet", in_channels=1, seed=3)
            )
            return router

        declared = make_router(build_dispatcher(TOML))
        imperative = make_router(imperative_premium())
        got = declared.predict_batch("lenet", samples, tenant="acme")
        want = imperative.predict_batch("lenet", samples, tenant="acme")
        for a, b in zip(got, want):
            assert a.tobytes() == b.tobytes()

    def test_apply_to_cluster_installs_both_scopes(self, samples):
        router = ClusterRouter(
            [ReplicaWorker(f"replica-{i}", batcher=full_batcher()) for i in range(2)]
        )
        router.register("lenet", lenet_bundle(), model_factory("lenet", in_channels=1, seed=3))
        dispatcher, replica_chains = apply_to_cluster(router, TOML)
        assert router.middleware is dispatcher
        assert dispatcher.default_stack == "standard"  # [cluster] cluster_stack
        assert set(replica_chains) == {"replica-0", "replica-1"}
        # Fresh chains per replica: per-replica caches stay per-replica.
        chains = list(replica_chains.values())
        assert chains[0] is not chains[1]
        for replica_id, chain in replica_chains.items():
            assert router.replica(replica_id).server.middleware is chain
        got = router.predict_batch("lenet", samples[:4], tenant="acme")
        want = InferenceServer(make_registry(), full_batcher()).predict_batch(
            "lenet", samples[:4]
        )
        for a, b in zip(got, want):
            assert a.tobytes() == b.tobytes()

    def test_gateway_tenant_from_hello_selects_stack(self, samples):
        registry = make_registry()
        backend = InferenceServer(
            registry,
            full_batcher(),
            middleware=build_dispatcher(TOML, resources={"registry": registry}),
        )
        want = [
            out.tobytes()
            for out in InferenceServer(
                make_registry(), full_batcher(), middleware=imperative_premium()
            ).predict_batch("lenet", samples[:6], tenant="acme")
        ]
        with backend:
            with GatewayServer(backend, server_id="stacks") as gateway:
                with RemoteClient(*gateway.address, tenant="acme") as remote:
                    got = [
                        remote.predict("lenet", sample).tobytes() for sample in samples[:6]
                    ]
        assert got == want
        ledger = backend.middleware.stack("premium").middlewares[-1]
        assert ledger.spent("acme") == pytest.approx(6 * privacy_loss(3.0))
        assert ledger.spent("default") == 0.0

    def test_privacy_budget_exceeded_crosses_the_wire_typed(self, samples):
        toml = TOML.replace('budget = 8.0', 'budget = 0.5')  # two queries max
        backend = InferenceServer(
            make_registry(), full_batcher(), middleware=build_dispatcher(toml)
        )
        with backend:
            with GatewayServer(backend, server_id="budget") as gateway:
                with RemoteClient(*gateway.address, tenant="acme") as remote:
                    remote.predict("lenet", samples[0])
                    remote.predict("lenet", samples[1])
                    with pytest.raises(PrivacyBudgetExceeded) as info:
                        remote.predict("lenet", samples[2])
        assert info.value.tenant == "acme"
        assert info.value.budget == 0.5
        assert info.value.spent == pytest.approx(0.5)


class TestHotSwapUnderLoad:
    def test_eight_thread_hammer_loses_nothing(self, samples):
        registry = make_registry()
        reference = InferenceServer(make_registry(), full_batcher())
        expected = {
            index: out.tobytes()
            for index, out in enumerate(reference.predict_batch("lenet", samples))
        }

        # A budget deep enough that the hammer never exhausts it: this test
        # pins swap/loss behaviour, not admission (that's pinned above).
        roomy = TOML.replace("budget = 8.0", "budget = 1000.0")
        chain_a = build_dispatcher(roomy, resources={"registry": registry})
        chain_b = build_dispatcher(roomy, resources={"registry": registry})
        ledgers = [
            chain.stack("premium").middlewares[-1] for chain in (chain_a, chain_b)
        ]
        server = InferenceServer(
            registry, full_batcher(), num_workers=4, middleware=chain_a
        )

        rounds_per_thread = 6
        results: dict = {}
        errors: list = []
        lock = threading.Lock()
        stop_swapping = threading.Event()

        def hammer(thread_index: int) -> None:
            for round_index in range(rounds_per_thread):
                futures = {
                    index: server.submit("lenet", sample, tenant="acme")
                    for index, sample in enumerate(samples)
                }
                done, not_done = wait(futures.values(), timeout=60)
                assert not not_done, "a hot-swap dropped an in-flight request"
                for index, future in futures.items():
                    error = future.exception()
                    if error is not None:
                        with lock:
                            errors.append(error)
                    else:
                        with lock:
                            results[(thread_index, round_index, index)] = (
                                index,
                                future.result().tobytes(),
                            )

        def swapper() -> None:
            current = 0
            while not stop_swapping.is_set():
                current ^= 1
                server.swap_middleware((chain_a, chain_b)[current])

        with server:
            threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
            swap_thread = threading.Thread(target=swapper)
            for thread in threads:
                thread.start()
            swap_thread.start()
            for thread in threads:
                thread.join()
            stop_swapping.set()
            swap_thread.join()

        assert errors == []
        assert len(results) == 8 * rounds_per_thread * len(samples)
        for index, payload in results.values():
            assert payload == expected[index], "hot-swap changed a served result"

        # Balanced ledgers: the stack is telemetry -> cache -> budget, so a
        # cache hit short-circuits before the ledger (a repeat answer leaks
        # nothing new) — total charges vary with cache timing, but each
        # ledger's balance must equal exactly (charged - refunded) x cost,
        # with no rejections and no charge lost or duplicated by a swap.
        cost = privacy_loss(3.0)
        assert sum(ledger.charged for ledger in ledgers) > 0
        for ledger in ledgers:
            assert ledger.spent("acme") == pytest.approx(
                (ledger.charged - ledger.refunded) * cost
            )
            assert ledger.rejected == 0
            assert ledger.spent("acme") <= ledger.budget

    def test_swap_replica_middleware_returns_old_chains(self):
        router = ClusterRouter(
            [ReplicaWorker(f"replica-{i}", batcher=full_batcher()) for i in range(2)]
        )
        new = MiddlewareChain([Telemetry()])
        old = router.swap_replica_middleware(new)
        assert set(old) == {"replica-0", "replica-1"}
        for replica_id in old:
            assert router.replica(replica_id).server.middleware is new
        with pytest.raises(KeyError):
            router.swap_replica_middleware(new, replica_ids=["ghost"])

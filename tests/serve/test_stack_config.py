"""Declarative stack configuration: parsing, registry, typed error paths.

Pins the config subsystem in isolation — the spec parser's structural
validation (duplicates, cycles, unknown references), the middleware factory
registry and its ``@register_middleware`` decorator, resource injection, the
:class:`StackDispatcher`'s selection precedence, and the
:class:`PrivacyBudget` ledger arithmetic.  Host integration (byte parity,
hot-swap under load) lives in ``test_stack_hosts.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.privacy import privacy_loss
from repro.serve import (
    ConfigError,
    MiddlewareChain,
    MiddlewareKwargsError,
    PrivacyBudget,
    PrivacyBudgetExceeded,
    RequestContext,
    ResponseCache,
    ServeMiddleware,
    StackDefinitionError,
    Telemetry,
    UnknownMiddlewareError,
    UnknownStackError,
    build_dispatcher,
    build_middleware,
    parse_stack_spec,
    register_middleware,
    registered_middleware,
    spec_from_toml,
)
from repro.serve.middleware import config as config_module

from .conftest import lenet_bundle

pytestmark = pytest.mark.skipif(
    config_module.tomllib is None, reason="no TOML parser on this interpreter"
)


def context(model_id: str = "lenet", tenant: str = "default") -> RequestContext:
    return RequestContext(model_id=model_id, sample=np.zeros(4, dtype=np.float32), tenant=tenant)


BASIC = """
default_stack = "standard"

[stacks.standard]
middleware = [
    { name = "telemetry" },
    { name = "cache", capacity = 64 },
]

[stacks.premium]
extends = "standard"
middleware = [ { name = "privacy_budget", budget = 2.5, amount = 3.0 } ]

[tenants]
acme = "premium"

[models]
audited = "premium"
"""


class TestParsing:
    def test_toml_spec_builds_named_chains(self):
        dispatcher = build_dispatcher(BASIC)
        assert dispatcher.stack_names() == ("standard", "premium")
        standard = dispatcher.stack("standard")
        assert [type(m) for m in standard] == [Telemetry, ResponseCache]
        assert standard.middlewares[1].capacity == 64

    def test_extends_prepends_parent_entries(self):
        premium = build_dispatcher(BASIC).stack("premium")
        assert [type(m) for m in premium] == [Telemetry, ResponseCache, PrivacyBudget]

    def test_dict_spec_equivalent_to_toml(self):
        spec = {
            "default_stack": "s",
            "stacks": {"s": {"middleware": [{"name": "telemetry"}]}},
        }
        dispatcher = build_dispatcher(spec)
        assert [type(m) for m in dispatcher.stack("s")] == [Telemetry]

    def test_bare_name_shorthand(self):
        spec = {"stacks": {"s": {"middleware": ["telemetry"]}}}
        assert [type(m) for m in build_dispatcher(spec).stack("s")] == [Telemetry]

    def test_invalid_toml_is_a_config_error(self):
        with pytest.raises(ConfigError, match="invalid TOML"):
            spec_from_toml("default_stack = ")

    def test_non_mapping_spec_rejected(self):
        with pytest.raises(ConfigError, match="mapping"):
            parse_stack_spec(["not", "a", "table"])


class TestErrorPaths:
    def test_unknown_middleware_name(self):
        with pytest.raises(UnknownMiddlewareError, match="'nope'") as info:
            build_dispatcher('[stacks.s]\nmiddleware = [ { name = "nope" } ]')
        assert "telemetry" in info.value.known

    def test_bad_kwarg_type(self):
        with pytest.raises(MiddlewareKwargsError, match="capacity"):
            build_dispatcher(
                '[stacks.s]\nmiddleware = [ { name = "cache", capacity = "huge" } ]'
            )

    def test_unknown_kwarg_name(self):
        with pytest.raises(MiddlewareKwargsError, match="verbosity"):
            build_middleware("telemetry", {"verbosity": 3})

    def test_constructor_rejection_is_wrapped(self):
        with pytest.raises(MiddlewareKwargsError, match="rate"):
            build_middleware("rate_limiter", {"rate": -1.0})

    def test_duplicate_stack_name_in_list_form(self):
        spec = {"stacks": [{"name": "s", "middleware": []}, {"name": "s", "middleware": []}]}
        with pytest.raises(StackDefinitionError, match="duplicate stack name 's'"):
            parse_stack_spec(spec)

    def test_extends_cycle(self):
        toml = """
        [stacks.a]
        extends = "b"
        middleware = []
        [stacks.b]
        extends = "a"
        middleware = []
        """
        with pytest.raises(StackDefinitionError, match="cycle"):
            spec_from_toml(toml)

    def test_extends_unknown_parent(self):
        with pytest.raises(StackDefinitionError, match="unknown stack 'ghost'"):
            spec_from_toml('[stacks.a]\nextends = "ghost"\nmiddleware = []')

    def test_default_stack_must_exist(self):
        with pytest.raises(UnknownStackError, match="default_stack"):
            spec_from_toml('default_stack = "missing"\n[stacks.s]\nmiddleware = []')

    def test_tenant_route_must_exist(self):
        toml = '[stacks.s]\nmiddleware = []\n[tenants]\nacme = "missing"'
        with pytest.raises(UnknownStackError, match=r"\[tenants\] 'acme'"):
            spec_from_toml(toml)

    def test_middleware_entry_without_name(self):
        spec = {"stacks": {"s": {"middleware": [{"capacity": 3}]}}}
        with pytest.raises(StackDefinitionError, match="missing middleware 'name'"):
            parse_stack_spec(spec)


class TestRegistry:
    def test_decorator_registers_and_specs_resolve(self):
        name = "test-audit-middleware"

        @register_middleware(name)
        class Audit(ServeMiddleware):
            def __init__(self, level: int = 1) -> None:
                self.level = level

        try:
            assert name in registered_middleware()
            chain = build_dispatcher(
                {"stacks": {"s": {"middleware": [{"name": name, "level": 3}]}}}
            ).stack("s")
            assert isinstance(chain.middlewares[0], Audit)
            assert chain.middlewares[0].level == 3
        finally:
            config_module._FACTORIES.pop(name, None)

    def test_duplicate_registration_needs_replace(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_middleware("telemetry", Telemetry)
        register_middleware("telemetry", Telemetry, replace=True)  # no-op re-pin

    def test_factory_must_return_a_middleware(self):
        name = "test-bad-factory"
        register_middleware(name, lambda: object())
        try:
            with pytest.raises(MiddlewareKwargsError, match="not a ServeMiddleware"):
                build_middleware(name)
        finally:
            config_module._FACTORIES.pop(name, None)

    def test_resources_injected_by_parameter_name(self, registry):
        validator = build_middleware("validator", resources={"registry": registry})
        assert validator.registry is registry
        # A middleware that declares no such parameter never sees the resource.
        telemetry = build_middleware("telemetry", resources={"registry": registry})
        assert not hasattr(telemetry, "registry")


class TestDispatcherSelection:
    def test_tenant_routing_and_default_fallback(self):
        dispatcher = build_dispatcher(BASIC)
        assert dispatcher.select(context(tenant="acme"))[0] == "premium"
        # A tenant with no [tenants] row falls back to the default stack.
        assert dispatcher.select(context(tenant="stranger"))[0] == "standard"

    def test_models_table_beats_tenant(self):
        dispatcher = build_dispatcher(BASIC)
        name, _ = dispatcher.select(context(model_id="audited", tenant="stranger"))
        assert name == "premium"

    def test_publish_stack_tag_beats_tenant(self, registry):
        registry.register(
            "tagged", lenet_bundle(), lambda: None, metadata={"stack": "premium"}
        )
        dispatcher = build_dispatcher(BASIC, resources={"registry": registry})
        assert dispatcher.select(context(model_id="tagged", tenant="stranger"))[0] == "premium"
        # [models] still wins over the published tag.
        registry.register(
            "audited", lenet_bundle(), lambda: None, metadata={"stack": "standard"}
        )
        assert dispatcher.select(context(model_id="audited"))[0] == "premium"

    def test_no_default_no_match_is_empty_chain(self):
        dispatcher = build_dispatcher('[stacks.s]\nmiddleware = [ { name = "telemetry" } ]')
        name, chain = dispatcher.select(context())
        assert name is None
        assert len(chain) == 0

    def test_shared_stack_shares_state(self):
        spec = {
            "stacks": {"s": {"middleware": [{"name": "cache", "capacity": 8}]}},
            "tenants": {"a": "s", "b": "s"},
        }
        dispatcher = build_dispatcher(spec)
        assert dispatcher.chain_for(context(tenant="a")) is dispatcher.chain_for(
            context(tenant="b")
        )

    def test_dispatcher_refuses_direct_add(self):
        dispatcher = build_dispatcher(BASIC)
        with pytest.raises(TypeError, match="named stacks"):
            dispatcher.add(Telemetry())
        dispatcher.stack("standard")  # the supported mutation surface
        with pytest.raises(UnknownStackError):
            dispatcher.stack("ghost")

    def test_dispatcher_is_a_chain_and_truthiness(self):
        dispatcher = build_dispatcher(BASIC)
        assert isinstance(dispatcher, MiddlewareChain)
        assert bool(dispatcher)
        assert not bool(build_dispatcher({"stacks": {"s": {"middleware": []}}}))


class TestPrivacyBudget:
    def test_charges_epsilon_per_answered_query(self):
        budget = PrivacyBudget(budget=1.0, amount=3.0)
        chain = MiddlewareChain([budget])
        cost = privacy_loss(3.0)  # 0.25
        for _ in range(4):
            ctx = context(tenant="acme")
            chain.execute(ctx, lambda pending: [setattr(c, "response", c.sample) for c in pending])
            assert ctx.error is None
        assert budget.spent("acme") == pytest.approx(4 * cost)
        fifth = context(tenant="acme")
        chain.execute(fifth, lambda pending: None)
        assert isinstance(fifth.error, PrivacyBudgetExceeded)
        assert fifth.error.tenant == "acme"
        assert fifth.error.budget == 1.0

    def test_failed_queries_are_refunded(self):
        budget = PrivacyBudget(budget=1.0, amount=3.0)
        chain = MiddlewareChain([budget])
        ctx = context(tenant="acme")

        def explode(pending):
            raise RuntimeError("model fell over")

        chain.execute(ctx, explode)
        assert isinstance(ctx.error, RuntimeError)
        assert budget.spent("acme") == 0.0
        assert budget.stats()["refunded"] == 1

    def test_cost_follows_published_augmentation_amount(self, registry):
        registry.register(
            "amount-tagged",
            lenet_bundle(),
            lambda: None,
            metadata={"augmentation_amount": 4.0},
        )
        budget = PrivacyBudget(budget=1.0, amount=1.0, registry=registry)
        assert budget.query_cost(context(model_id="amount-tagged")) == privacy_loss(4.0)
        # Untagged models fall back to the configured amount.
        assert budget.query_cost(context(model_id="lenet")) == privacy_loss(1.0)

    def test_worst_case_without_any_amount(self):
        budget = PrivacyBudget(budget=5.0)
        assert budget.query_cost(context()) == 1.0  # epsilon of an un-augmented model

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PrivacyBudget(budget=0.0)
        with pytest.raises(ValueError):
            PrivacyBudget(budget=1.0, amount=-2.0)

"""ModelRegistry: lazy loading, cache hits, LRU eviction, bundle reuse."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud import pack_model
from repro.models import model_factory
from repro.serve import Batcher, ModelRegistry

from .conftest import make_lenet


def register_lenet(registry: ModelRegistry, model_id: str, seed: int, replace: bool = False):
    return registry.register(
        model_id,
        pack_model(make_lenet(seed), task="classification"),
        model_factory("lenet", in_channels=1, seed=seed),
        replace=replace,
    )


class TestCatalogue:
    def test_register_is_lazy(self):
        registry = ModelRegistry(capacity=2)
        register_lenet(registry, "a", 1)
        assert registry.stats()["loads"] == 0
        assert "a" in registry
        assert registry.cached_ids() == []

    def test_duplicate_registration_rejected_unless_replace(self):
        registry = ModelRegistry(capacity=2)
        register_lenet(registry, "a", 1)
        with pytest.raises(ValueError):
            register_lenet(registry, "a", 2)
        register_lenet(registry, "a", 2, replace=True)
        assert len(registry) == 1

    def test_replace_invalidates_cached_instance(self):
        registry = ModelRegistry(capacity=2)
        register_lenet(registry, "a", 1)
        before = registry.get("a")
        register_lenet(registry, "a", 2, replace=True)
        after = registry.get("a")
        assert before is not after
        assert not np.array_equal(
            before.state_dict()["conv1.weight"], after.state_dict()["conv1.weight"]
        )

    def test_unknown_model_raises_keyerror(self):
        registry = ModelRegistry(capacity=2)
        with pytest.raises(KeyError):
            registry.get("nope")
        with pytest.raises(KeyError):
            registry.entry("nope")
        with pytest.raises(KeyError):
            registry.unregister("nope")

    def test_unregister_drops_entry_and_instance(self):
        registry = ModelRegistry(capacity=2)
        register_lenet(registry, "a", 1)
        registry.get("a")
        registry.unregister("a")
        assert "a" not in registry
        assert registry.cached_ids() == []

    def test_entry_exposes_bundle_provenance(self):
        registry = ModelRegistry(capacity=2)
        entry = register_lenet(registry, "a", 1)
        assert entry.size_bytes > 0
        assert len(entry.checksum) == 64
        assert registry.entry("a") is entry

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ModelRegistry(capacity=0)


class TestInstanceCache:
    def test_cache_hit_returns_same_instance(self):
        registry = ModelRegistry(capacity=2)
        register_lenet(registry, "a", 1)
        first = registry.get("a")
        second = registry.get("a")
        assert first is second
        stats = registry.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["loads"] == 1

    def test_loaded_instance_is_eval_mode_with_bundle_weights(self):
        registry = ModelRegistry(capacity=2)
        register_lenet(registry, "a", 5)
        model = registry.get("a")
        assert model.training is False
        expected = make_lenet(5).state_dict()
        got = model.state_dict()
        for name in expected:
            assert np.array_equal(expected[name], got[name])

    def test_lru_eviction_order(self):
        registry = ModelRegistry(capacity=2)
        for model_id, seed in (("a", 1), ("b", 2), ("c", 3)):
            register_lenet(registry, model_id, seed)
        registry.get("a")
        registry.get("b")
        registry.get("a")  # refresh "a" so "b" is the least recently used
        registry.get("c")
        assert registry.cached_ids() == ["a", "c"]
        assert registry.stats()["evictions"] == 1

    def test_reload_after_eviction_is_equivalent(self):
        registry = ModelRegistry(capacity=1)
        register_lenet(registry, "a", 1)
        register_lenet(registry, "b", 2)
        x = np.random.default_rng(0).standard_normal((2, 1, 28, 28)).astype(np.float32)
        batcher = Batcher(max_batch_size=2, padding="full")
        before = batcher.run_batch(registry.get("a"), list(x))
        registry.get("b")  # evicts "a"
        assert registry.cached_ids() == ["b"]
        after = batcher.run_batch(registry.get("a"), list(x))
        for got, want in zip(after, before):
            assert np.array_equal(got, want)

    def test_clear_cache_keeps_catalogue(self):
        registry = ModelRegistry(capacity=2)
        register_lenet(registry, "a", 1)
        registry.get("a")
        registry.clear_cache()
        assert registry.cached_ids() == []
        assert "a" in registry
        registry.get("a")
        assert registry.stats()["loads"] == 2

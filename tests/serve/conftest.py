"""Shared fixtures for the serving tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud import pack_model
from repro.models import LeNet, model_factory
from repro.serve import Batcher, InferenceServer, ModelRegistry


def make_lenet(seed: int = 3) -> LeNet:
    return LeNet(10, 1, 28, rng=np.random.default_rng(seed))


def lenet_bundle(seed: int = 3):
    return pack_model(make_lenet(seed), task="classification")


@pytest.fixture
def registry() -> ModelRegistry:
    registry = ModelRegistry(capacity=2)
    registry.register("lenet", lenet_bundle(), model_factory("lenet", in_channels=1, seed=3))
    return registry


@pytest.fixture
def server(registry: ModelRegistry) -> InferenceServer:
    return InferenceServer(registry, Batcher(max_batch_size=8, max_wait=0.01))


@pytest.fixture
def images() -> np.ndarray:
    return np.random.default_rng(7).standard_normal((16, 1, 28, 28)).astype(np.float32)

"""Histogram snapshot coherence under concurrency (regression).

The old shape read count, sum and bucket counts under separate lock
acquisitions, so a snapshot taken during a concurrent ``observe`` could
report ``sum``/``count`` that disagreed with its buckets.  ``snapshot()``
now reads everything under one acquisition; these tests hammer it.
"""

from __future__ import annotations

import threading

import pytest

from repro.serve import MetricsRegistry
from repro.serve.observability.metrics import DEFAULT_BUCKETS, Histogram


class TestSnapshotShape:
    def test_buckets_are_cumulative_and_close_at_count(self):
        histogram = Histogram("latency")
        for value in (0.003, 0.02, 0.2, 2.0, 20.0, 2000.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        counts = list(snapshot["buckets"].values())
        assert counts == sorted(counts)  # cumulative, monotone
        assert snapshot["buckets"]["+Inf"] == snapshot["count"] == 6
        assert snapshot["buckets"][repr(0.005)] == 1  # 0.003 only
        assert snapshot["sum"] == pytest.approx(2022.223)

    def test_value_above_every_bound_lands_only_in_inf(self):
        histogram = Histogram("latency")
        histogram.observe(max(DEFAULT_BUCKETS) * 10)
        snapshot = histogram.snapshot()
        assert snapshot["buckets"][repr(max(DEFAULT_BUCKETS))] == 0
        assert snapshot["buckets"]["+Inf"] == 1

    def test_boundary_value_counts_at_or_below_its_bound(self):
        histogram = Histogram("latency")
        histogram.observe(0.25)  # exactly a bound: le="0.25" must include it
        assert histogram.snapshot()["buckets"][repr(0.25)] == 1

    def test_custom_buckets(self):
        histogram = Histogram("latency", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["buckets"] == {repr(1.0): 1, repr(10.0): 2, "+Inf": 3}

    def test_summary_shape_is_unchanged(self):
        histogram = Histogram("latency")
        assert set(histogram.summary()) == {"count", "mean", "p50", "p95"}


class TestCoherenceUnderConcurrency:
    def test_snapshot_never_disagrees_with_itself(self):
        """Threaded regression: every snapshot's +Inf bucket equals its count
        and its sum matches count × the constant sample value exactly."""
        histogram = MetricsRegistry().histogram("latency")
        stop = threading.Event()
        errors = []

        def writer():
            while not stop.is_set():
                histogram.observe(3.0)

        def reader():
            while not stop.is_set():
                snapshot = histogram.snapshot()
                if snapshot["buckets"]["+Inf"] != snapshot["count"]:
                    errors.append(("inf-vs-count", snapshot))
                    return
                if snapshot["sum"] != pytest.approx(snapshot["count"] * 3.0):
                    errors.append(("sum-vs-count", snapshot))
                    return
                counts = list(snapshot["buckets"].values())
                if counts != sorted(counts):
                    errors.append(("non-monotone", snapshot))
                    return

        threads = [threading.Thread(target=writer) for _ in range(4)] + [
            threading.Thread(target=reader) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        stop_timer = threading.Timer(1.0, stop.set)
        stop_timer.start()
        for thread in threads:
            thread.join()
        stop_timer.cancel()
        assert not errors, errors[:1]

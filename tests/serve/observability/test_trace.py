"""Tracer unit behaviour: ids, inheritance, sampling, retention, the ring."""

from __future__ import annotations

import random

import pytest

from repro.serve.observability import InMemoryExporter, TraceContext, Tracer


def make_tracer(**kwargs) -> Tracer:
    kwargs.setdefault("rng", random.Random(7))
    return Tracer(**kwargs)


class TestSpanIdentity:
    def test_root_span_gets_fresh_ids_and_no_parent(self):
        tracer = make_tracer()
        span = tracer.start_span("client.submit").end()
        assert len(span.trace_id) == 32  # 128-bit hex
        assert len(span.span_id) == 16  # 64-bit hex
        assert span.parent_id is None

    def test_child_inherits_trace_and_links_to_parent(self):
        tracer = make_tracer()
        root = tracer.start_span("router.submit")
        child = root.child("router.dispatch", attributes={"replica_id": "r0"})
        assert child.span.trace_id == root.span.trace_id
        assert child.span.parent_id == root.span.span_id
        assert child.span.span_id != root.span.span_id
        assert child.span.attributes == {"replica_id": "r0"}
        child.end()
        root.end()

    def test_context_names_this_span_as_the_far_side_parent(self):
        tracer = make_tracer()
        root = tracer.start_span("client.submit")
        context = root.context
        assert context == TraceContext(root.span.trace_id, root.span.span_id, True)
        # A second tracer (the remote side) continues the same trace.
        remote = make_tracer()
        continuation = remote.start_span("gateway.request", parent=context)
        assert continuation.span.trace_id == root.span.trace_id
        assert continuation.span.parent_id == root.span.span_id

    def test_record_attaches_a_measured_interval_as_finished_child(self):
        tracer = make_tracer()
        root = tracer.start_span("server.request")
        span = root.record("model", begin=10.0, end=10.5, attributes={"batch_size": 4})
        assert span.begin == 10.0 and span.end == 10.5
        assert span.parent_id == root.span.span_id
        assert span.duration == pytest.approx(0.5)
        [stored] = tracer.recent_spans()
        assert stored["name"] == "model"
        assert stored["attributes"] == {"batch_size": 4}

    def test_end_is_idempotent(self):
        tracer = make_tracer()
        span = tracer.start_span("x")
        first = span.end()
        assert span.end() is first
        assert tracer.stats()["spans_finished"] == 1


class TestSampling:
    def test_head_decision_is_rolled_once_and_inherited(self):
        tracer = make_tracer(sample_rate=0.0)
        root = tracer.start_span("client.submit")
        assert root.span.sampled is False
        child = root.child("nested")
        assert child.span.sampled is False  # inherited, not re-rolled
        child.end()
        root.end()
        assert tracer.recent_spans() == []
        assert tracer.stats()["spans_dropped"] == 2

    def test_remote_continuation_never_rerolls(self):
        upstream = TraceContext("f" * 32, "e" * 16, sampled=False)
        tracer = make_tracer(sample_rate=1.0)  # would sample its own roots
        span = tracer.start_span("gateway.request", parent=upstream)
        assert span.span.sampled is False

    def test_errors_are_always_retained(self):
        tracer = make_tracer(sample_rate=0.0)
        span = tracer.start_span("router.dispatch")
        span.end(error=RuntimeError("replica died"))
        [stored] = tracer.recent_spans()
        assert stored["error"] == "RuntimeError: replica died"
        stats = tracer.stats()
        assert stats["spans_errored"] == 1
        assert stats["spans_retained"] == 1

    def test_sample_rate_bounds_are_validated(self):
        with pytest.raises(ValueError, match="sample_rate"):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError, match="max_spans"):
            Tracer(max_spans=0)


class TestRingAndLedger:
    def test_ring_is_bounded_and_keeps_the_newest(self):
        tracer = make_tracer(max_spans=3)
        for index in range(5):
            tracer.start_span(f"op-{index}").end()
        names = [span["name"] for span in tracer.recent_spans()]
        assert names == ["op-2", "op-3", "op-4"]
        assert tracer.recent_spans(limit=1)[0]["name"] == "op-4"

    def test_counters_balance(self):
        tracer = make_tracer(sample_rate=0.5, rng=random.Random(3))
        for _ in range(50):
            root = tracer.start_span("root")
            root.child("leaf").end()
            root.end()
        stats = tracer.stats()
        assert stats["spans_started"] == stats["spans_finished"] == 100
        assert stats["spans_retained"] + stats["spans_dropped"] == 100
        assert stats["traces_started"] == 50
        assert 0 < stats["spans_retained"] < 100  # the coin actually flipped

    def test_span_counts_tally_by_name(self):
        tracer = make_tracer()
        for _ in range(3):
            tracer.start_span("gateway.request").end()
        tracer.start_span("router.submit").end()
        assert tracer.span_counts() == {"gateway.request": 3, "router.submit": 1}
        tracer.clear()
        assert tracer.span_counts() == {}
        assert tracer.stats()["spans_finished"] == 4  # counters survive clear()


class TestExport:
    def test_retained_spans_fan_out_to_exporters(self):
        sink = InMemoryExporter()
        tracer = make_tracer(exporters=[sink])
        tracer.start_span("a").end()
        assert [span["name"] for span in sink.spans] == ["a"]

    def test_unsampled_spans_are_not_exported(self):
        sink = InMemoryExporter()
        tracer = make_tracer(sample_rate=0.0, exporters=[sink])
        tracer.start_span("a").end()
        assert sink.spans == []

    def test_a_failing_exporter_cannot_break_serving(self):
        class Bomb:
            def export(self, payload):
                raise RuntimeError("exporter down")

        sink = InMemoryExporter()
        tracer = make_tracer(exporters=[Bomb(), sink])
        span = tracer.start_span("a").end()  # must not raise
        assert span.name == "a"
        assert len(sink.spans) == 1  # later exporters still run

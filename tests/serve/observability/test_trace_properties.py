"""Property-based trace invariants.

Hypothesis drives random span trees (shape, nesting depth, error placement,
sampling decisions) through the real :class:`Tracer` and checks the
structural invariants every consumer of a trace relies on:

* at 100% sampling, every retained span's ``parent_id`` resolves inside the
  retained set and every span walks up to exactly one root — zero orphans;
* children nest within their parent's ``[begin, end]`` bounds;
* the retention predicate is exactly ``sampled or error`` — an error-bearing
  span survives any sampling decision, an unsampled clean span never does;
* the tracer's own counters stay balanced whatever the tree shape.
"""

from __future__ import annotations

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.observability import Tracer


class FakeClock:
    """A deterministic, strictly increasing perf_counter stand-in."""

    def __init__(self) -> None:
        self._ticks = itertools.count(start=1)

    def __call__(self) -> float:
        return float(next(self._ticks))


# A tree is a list of node specs; each node picks its parent among earlier
# nodes (or the root) and whether it ends with an error.
node_specs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=31), st.booleans()),
    min_size=1,
    max_size=32,
)


def build_trace(tracer: Tracer, specs) -> list:
    """Open a root, grow the random tree under it, close in LIFO order.

    Error-ended spans are closed immediately, so only still-open spans are
    eligible parents — a child cannot begin after its parent finished.
    """
    root = tracer.start_span("root")
    opened = [root]
    open_spans = [root]
    for parent_index, has_error in specs:
        parent = open_spans[parent_index % len(open_spans)]
        child = parent.child(f"op-{len(opened)}")
        opened.append(child)
        if has_error:
            child.end(error=RuntimeError("boom"))
        else:
            open_spans.append(child)
    for span in reversed(open_spans):
        span.end()
    return [span.span for span in opened]


class TestTraceInvariants:
    @given(specs=node_specs)
    @settings(max_examples=200)
    def test_every_span_reaches_one_root_with_no_orphans(self, specs):
        tracer = Tracer(sample_rate=1.0, rng=random.Random(0), clock=FakeClock())
        build_trace(tracer, specs)
        retained = {span["span_id"]: span for span in tracer.recent_spans()}
        assert len(retained) == len(specs) + 1
        roots = 0
        for span in retained.values():
            if span["parent_id"] is None:
                roots += 1
                continue
            # Parent ids resolve within the retained set: zero orphans.
            hops = 0
            cursor = span
            while cursor["parent_id"] is not None:
                cursor = retained[cursor["parent_id"]]
                hops += 1
                assert hops <= len(retained), "parent cycle"
            assert cursor["name"] == "root"
        assert roots == 1

    @given(specs=node_specs)
    @settings(max_examples=200)
    def test_children_nest_within_parent_bounds(self, specs):
        tracer = Tracer(sample_rate=1.0, rng=random.Random(0), clock=FakeClock())
        build_trace(tracer, specs)
        retained = {span["span_id"]: span for span in tracer.recent_spans()}
        for span in retained.values():
            assert span["begin"] < span["end"]
            if span["parent_id"] is not None:
                parent = retained[span["parent_id"]]
                # LIFO close order: a child begins after and ends before its
                # parent; record()-stamped intervals inherit the same clock.
                assert parent["begin"] < span["begin"]
                assert span["end"] < parent["end"]

    @given(specs=node_specs, sampled=st.booleans())
    @settings(max_examples=200)
    def test_retention_is_exactly_sampled_or_error(self, specs, sampled):
        tracer = Tracer(
            sample_rate=1.0 if sampled else 0.0,
            rng=random.Random(0),
            clock=FakeClock(),
        )
        spans = build_trace(tracer, specs)
        retained_ids = {span["span_id"] for span in tracer.recent_spans()}
        for span in spans:
            expected = sampled or span.error is not None
            assert (span.span_id in retained_ids) == expected

    @given(specs=node_specs, rate=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100)
    def test_counters_balance_for_any_tree_and_rate(self, specs, rate):
        tracer = Tracer(sample_rate=rate, rng=random.Random(1), clock=FakeClock())
        build_trace(tracer, specs)
        stats = tracer.stats()
        total = len(specs) + 1
        assert stats["spans_started"] == stats["spans_finished"] == total
        assert stats["spans_retained"] + stats["spans_dropped"] == total
        assert stats["traces_started"] == 1
        assert stats["spans_errored"] == sum(1 for _, has_error in specs if has_error)

    @given(specs=node_specs)
    @settings(max_examples=100)
    def test_all_spans_share_the_root_trace_id(self, specs):
        tracer = Tracer(sample_rate=1.0, rng=random.Random(2), clock=FakeClock())
        spans = build_trace(tracer, specs)
        assert len({span.trace_id for span in spans}) == 1
        assert len({span.span_id for span in spans}) == len(spans)  # ids unique

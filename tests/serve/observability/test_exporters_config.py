"""Exporters, the @register_exporter registry, and the [observability] block."""

from __future__ import annotations

import json

import pytest

from repro.serve import spec_from_toml
from repro.serve.observability import (
    InMemoryExporter,
    JsonlExporter,
    ObservabilityConfigError,
    SpanExporter,
    Tracer,
    register_exporter,
    registered_exporters,
    tracer_from_spec,
)
from repro.serve.observability.exporters import _EXPORTERS, build_exporter


class TestInMemoryExporter:
    def test_capacity_drops_the_oldest(self):
        sink = InMemoryExporter(capacity=2)
        for index in range(4):
            sink.export({"name": f"s{index}"})
        assert [span["name"] for span in sink.spans] == ["s2", "s3"]
        assert len(sink) == 2
        sink.clear()
        assert sink.spans == []

    def test_capacity_is_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            InMemoryExporter(capacity=0)


class TestJsonlExporter:
    def test_spans_and_metrics_share_one_tagged_file(self, tmp_path):
        path = tmp_path / "observability.jsonl"
        exporter = JsonlExporter(path)
        exporter.export({"name": "gateway.request", "duration_ms": 1.25})
        exporter.write_metrics({"gateway": {"requests": 1}})
        exporter.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["kind"] for line in lines] == ["span", "metrics"]
        assert lines[0]["name"] == "gateway.request"
        assert lines[1]["metrics"]["gateway"]["requests"] == 1
        assert exporter.lines_written == 2

    def test_export_after_close_is_a_silent_noop(self, tmp_path):
        exporter = JsonlExporter(tmp_path / "x.jsonl")
        exporter.close()
        exporter.export({"name": "late"})  # must not raise
        assert exporter.lines_written == 0


class TestExporterRegistry:
    def test_builtins_are_registered(self):
        assert {"memory", "jsonl"} <= set(registered_exporters())

    def test_register_build_and_replace(self):
        class Custom(SpanExporter):
            def __init__(self, tag: str = "") -> None:
                self.tag = tag

            def export(self, span):
                pass

        try:
            register_exporter("custom-test", Custom)
            built = build_exporter("custom-test", {"tag": "t"})
            assert isinstance(built, Custom) and built.tag == "t"
            with pytest.raises(ValueError, match="already registered"):
                register_exporter("custom-test", Custom)
            register_exporter("custom-test", Custom, replace=True)
        finally:
            _EXPORTERS.pop("custom-test", None)

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown exporter"):
            build_exporter("nope")


class TestTracerFromSpec:
    def test_empty_block_means_tracing_off(self):
        assert tracer_from_spec(None) is None
        assert tracer_from_spec({}) is None

    def test_full_block_builds_a_configured_tracer(self, tmp_path):
        tracer = tracer_from_spec(
            {
                "sample_rate": 0.25,
                "max_spans": 16,
                "exporters": [
                    "memory",
                    {"name": "jsonl", "path": str(tmp_path / "spans.jsonl")},
                ],
            }
        )
        assert isinstance(tracer, Tracer)
        assert tracer.sample_rate == 0.25
        assert tracer.stats()["ring_capacity"] == 16
        assert [type(e).__name__ for e in tracer.exporters] == [
            "InMemoryExporter",
            "JsonlExporter",
        ]

    def test_accepts_a_parsed_stack_spec(self):
        spec = spec_from_toml(
            """
            [stacks.plain]
            middleware = ["telemetry"]

            [observability]
            sample_rate = 0.5
            max_spans = 8
            """
        )
        assert spec.observability == {"sample_rate": 0.5, "max_spans": 8}
        tracer = tracer_from_spec(spec)
        assert tracer is not None and tracer.sample_rate == 0.5

    @pytest.mark.parametrize(
        "block, match",
        [
            ({"sample_rate": "lots"}, "sample_rate"),
            ({"sample_rate": 1.5}, "sample_rate"),
            ({"max_spans": 0}, "max_spans"),
            ({"max_spans": True}, "max_spans"),
            ({"exporters": "memory"}, "exporters"),
            ({"exporters": [{"path": "x"}]}, "missing exporter 'name'"),
            ({"exporters": ["statsd-ghost"]}, "unknown exporter"),
            ({"exporters": [{"name": "memory", "capacity": -1}]}, "bad arguments|capacity"),
            ({"wat": 1}, "unknown \\[observability\\] keys"),
        ],
    )
    def test_malformed_blocks_fail_eagerly(self, block, match):
        with pytest.raises(ObservabilityConfigError, match=match):
            tracer_from_spec(block)

    def test_extra_exporters_ride_along(self):
        sink = InMemoryExporter()
        tracer = tracer_from_spec({"sample_rate": 1.0}, extra_exporters=(sink,))
        tracer.start_span("x").end()
        assert len(sink.spans) == 1

"""PrometheusExporter.render(): text exposition from registries and snapshots."""

from __future__ import annotations

import pytest

from repro.serve import MetricsRegistry, PrometheusExporter
from repro.serve.observability import build_exporter, registered_exporters


@pytest.fixture
def registry() -> MetricsRegistry:
    metrics = MetricsRegistry()
    metrics.counter("gateway.requests").inc(5)
    metrics.gauge("router.replicas").set(3)
    histogram = metrics.histogram("gateway.latency_ms")
    for value in (0.5, 4.0, 80.0):
        histogram.observe(value)
    return metrics


class TestRender:
    def test_counters_get_the_total_suffix_and_type_line(self, registry):
        text = PrometheusExporter().render(registry)
        assert "# TYPE gateway_requests_total counter" in text
        assert "gateway_requests_total 5" in text

    def test_gauges_render_plainly(self, registry):
        text = PrometheusExporter().render(registry)
        assert "# TYPE router_replicas gauge" in text
        assert "router_replicas 3.0" in text

    def test_histograms_render_cumulative_buckets_count_and_sum(self, registry):
        text = PrometheusExporter().render(registry)
        lines = text.splitlines()
        bucket_lines = [line for line in lines if line.startswith("gateway_latency_ms_bucket")]
        assert bucket_lines, "expected _bucket lines from the live registry"
        # Cumulative: the counts along the bucket lines never decrease.
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)
        assert 'le="+Inf"' in bucket_lines[-1]
        assert counts[-1] == 3
        assert "gateway_latency_ms_count 3" in text
        assert "gateway_latency_ms_sum 84.5" in text

    def test_render_accepts_a_snapshot_dict(self, registry):
        snapshot = registry.snapshot()
        text = PrometheusExporter().render(snapshot)
        assert "gateway_requests_total 5" in text
        # Snapshot histograms carry summaries (no buckets): count-only render.
        assert "gateway_latency_ms_count 3" in text
        assert "_bucket" not in text

    def test_render_rejects_garbage(self):
        with pytest.raises(TypeError):
            PrometheusExporter().render(42)

    def test_output_ends_with_a_newline_and_sections_are_sorted(self, registry):
        registry.counter("admission.shed").inc()
        text = PrometheusExporter().render(registry)
        assert text.endswith("\n")
        counter_names = [
            line.split(" ")[2]
            for line in text.splitlines()
            if line.startswith("# TYPE") and line.endswith("counter")
        ]
        assert counter_names == sorted(counter_names)

    def test_empty_registry_renders_empty(self):
        assert PrometheusExporter().render(MetricsRegistry()) == ""


class TestNameSanitisation:
    def test_dots_and_dashes_become_underscores(self):
        assert PrometheusExporter._name("gateway.latency-ms") == "gateway_latency_ms"

    def test_leading_digit_is_guarded(self):
        assert PrometheusExporter._name("2xx.responses") == "_2xx_responses"


class TestExporterContract:
    def test_registered_by_name_for_the_toml_block(self):
        assert "prometheus" in registered_exporters()
        exporter = build_exporter("prometheus")
        assert isinstance(exporter, PrometheusExporter)

    def test_export_is_a_deliberate_noop(self):
        exporter = PrometheusExporter()
        exporter.export({"name": "span", "trace_id": "x"})  # must not raise

    def test_content_type_is_the_prometheus_text_version(self):
        assert "version=0.0.4" in PrometheusExporter.CONTENT_TYPE

"""Telemetry→MetricsRegistry delegation pin and the ModelStats stage cap.

The delegation contract: wiring a registry into :class:`Telemetry` must not
change what lands in ``ModelStats.stages()`` by a single byte — the registry
only *additionally* tallies flow-through.  The stage-key LRU cap bounds the
memory a hostile/buggy caller can consume via unbounded stage names.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import MetricsRegistry, ModelStats, Telemetry
from repro.serve.middleware.base import RequestContext


def drive(telemetry: Telemetry, stats: ModelStats, timings) -> None:
    context = RequestContext(
        model_id="lenet",
        sample=np.zeros(1, dtype=np.float32),
        stats=stats,
        created_at=0.0,
    )
    context.timings.update(timings)
    context.response = np.zeros(1, dtype=np.float32)
    telemetry.on_response(context)


class TestDelegationRegression:
    def test_stages_are_byte_identical_with_and_without_registry(self, monkeypatch):
        """The regression pin: same inputs, same stages() bytes, either path."""
        monkeypatch.setattr("repro.serve.middleware.telemetry.time.perf_counter", lambda: 0.5)
        timings = {"RateLimiter.on_request": 0.001, "model": 0.25}

        plain_stats = ModelStats(max_batch_size=4)
        drive(Telemetry(), plain_stats, timings)

        registry = MetricsRegistry()
        delegated_stats = ModelStats(max_batch_size=4)
        drive(Telemetry(metrics=registry), delegated_stats, timings)

        assert delegated_stats.stages() == plain_stats.stages()
        assert repr(delegated_stats.stages()) == repr(plain_stats.stages())
        # ...and the registry saw every recording flow through.
        assert registry.counter("telemetry.stages_recorded").value == len(timings) + 1

    def test_error_and_cache_hit_outcomes_still_counted(self, monkeypatch):
        monkeypatch.setattr("repro.serve.middleware.telemetry.time.perf_counter", lambda: 1.0)
        registry = MetricsRegistry()
        telemetry = Telemetry(metrics=registry)
        stats = ModelStats(max_batch_size=4)

        context = RequestContext(
            model_id="lenet",
            sample=np.zeros(1, dtype=np.float32),
            stats=stats,
            created_at=0.0,
        )
        context.error = RuntimeError("boom")
        telemetry.on_response(context)

        hit = RequestContext(
            model_id="lenet",
            sample=np.zeros(1, dtype=np.float32),
            stats=stats,
            created_at=0.0,
        )
        hit.metadata["cache"] = "hit"
        telemetry.on_response(hit)

        stages = stats.stages()
        assert stages["request.total"]["count"] == 2
        assert stages["request.error"]["count"] == 1
        assert stages["request.cache_hit"]["count"] == 1

    def test_local_fallback_stats_still_work_with_registry(self):
        telemetry = Telemetry(metrics=MetricsRegistry())
        context = RequestContext(model_id="m", sample=np.zeros(1, dtype=np.float32))
        telemetry.on_response(context)  # no server-attached stats
        assert telemetry.snapshot()["m"]["stages"]["request.total"]["count"] == 1


class TestStageKeyCap:
    def test_eviction_is_lru_and_counted(self):
        stats = ModelStats(max_batch_size=1, max_stages=3)
        for name in ["a", "b", "c"]:
            stats.record_stage(name, 0.1)
        stats.record_stage("a", 0.1)  # touch "a": "b" becomes the coldest
        stats.record_stage("d", 0.1)  # evicts "b"
        assert set(stats.stages()) == {"a", "c", "d"}
        assert stats.evicted_stages == 1
        assert stats.snapshot()["evicted_stages"] == 1

    def test_cap_bounds_unbounded_stage_cardinality(self):
        stats = ModelStats(max_batch_size=1, max_stages=8)
        for index in range(1000):
            stats.record_stage(f"request-{index}", 0.001)
        assert len(stats.stages()) == 8
        assert stats.evicted_stages == 992

    def test_default_cap_never_fires_for_real_stage_names(self):
        stats = ModelStats(max_batch_size=1)
        for index in range(200):  # more hooks than any real chain has
            stats.record_stage(f"Middleware{index}.on_request", 0.001)
        assert stats.evicted_stages == 0

    def test_merged_sums_evictions_and_maxes_caps(self):
        left = ModelStats(max_batch_size=2, max_stages=2)
        right = ModelStats(max_batch_size=4, max_stages=16)
        for name in ["a", "b", "c"]:  # one eviction on the small cap
            left.record_stage(name, 0.1)
        right.record_stage("a", 0.2)
        merged = ModelStats.merged([left, right])
        assert merged.max_stages == 16
        assert merged.evicted_stages == 1
        assert merged.stages()["a"]["count"] == 1  # left's "a" was evicted

    def test_max_stages_is_validated(self):
        with pytest.raises(ValueError, match="max_stages"):
            ModelStats(max_batch_size=1, max_stages=0)

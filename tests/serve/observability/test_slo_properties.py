"""Property tests (hypothesis): burn-rate alerting cannot flap.

The hysteresis guarantee: for ANY burn-rate sequence, transitions strictly
alternate firing → resolved → firing …, a "resolved" only happens after the
burn drops below ``factor × resolve_fraction`` on both windows, and a
sequence oscillating entirely *inside* the hysteresis band produces at most
one transition — the no-flapping property.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import BurnRateRule

burns = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
burn_pairs = st.tuples(burns, burns)
sequences = st.lists(
    st.one_of(burn_pairs, st.just((None, None))), min_size=1, max_size=200
)
factors = st.floats(min_value=0.5, max_value=20.0)
resolve_fractions = st.floats(min_value=0.1, max_value=0.99)


@given(sequence=sequences, factor=factors, resolve_fraction=resolve_fractions)
@settings(max_examples=300, deadline=None)
def test_transitions_strictly_alternate(sequence, factor, resolve_fraction):
    rule = BurnRateRule(60.0, 600.0, factor, resolve_fraction=resolve_fraction)
    transitions = []
    for short_burn, long_burn in sequence:
        outcome = rule.evaluate(short_burn, long_burn)
        if outcome is not None:
            transitions.append(outcome)
    for first, second in zip(transitions, transitions[1:]):
        assert first != second, f"repeated '{first}' without the opposite transition"
    if transitions:
        assert transitions[0] == "firing"  # rules start quiet


@given(sequence=sequences, factor=factors, resolve_fraction=resolve_fractions)
@settings(max_examples=300, deadline=None)
def test_transition_thresholds_are_honoured(sequence, factor, resolve_fraction):
    rule = BurnRateRule(60.0, 600.0, factor, resolve_fraction=resolve_fraction)
    for short_burn, long_burn in sequence:
        outcome = rule.evaluate(short_burn, long_burn)
        if outcome == "firing":
            assert short_burn > factor and long_burn > factor
        elif outcome == "resolved":
            clear = factor * resolve_fraction
            assert short_burn < clear and long_burn < clear
        if short_burn is None:
            assert outcome is None  # silence never transitions


@given(
    factor=factors,
    resolve_fraction=st.floats(min_value=0.1, max_value=0.9),
    oscillations=st.integers(min_value=1, max_value=50),
)
@settings(max_examples=200, deadline=None)
def test_oscillation_inside_the_band_cannot_flap(factor, resolve_fraction, oscillations):
    """A burn bouncing between 'just below firing' and 'well above firing'
    — entirely above the resolve threshold — transitions at most once."""
    rule = BurnRateRule(60.0, 600.0, factor, resolve_fraction=resolve_fraction)
    clear = factor * resolve_fraction
    inside_low = clear + (factor - clear) * 0.5  # below factor, above clear
    above = factor * 1.5
    transitions = 0
    for _ in range(oscillations):
        for burn in (above, inside_low):
            if rule.evaluate(burn, burn) is not None:
                transitions += 1
    assert transitions <= 1


@given(factor=factors, resolve_fraction=resolve_fractions)
@settings(max_examples=100, deadline=None)
def test_fire_resolve_round_trip(factor, resolve_fraction):
    rule = BurnRateRule(60.0, 600.0, factor, resolve_fraction=resolve_fraction)
    assert rule.evaluate(factor * 2, factor * 2) == "firing"
    assert rule.evaluate(0.0, 0.0) == "resolved"
    assert rule.evaluate(factor * 2, factor * 2) == "firing"  # re-armable

"""StageProfiler: sampling, stage tagging, bounded memory, exports."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.serve import StageProfiler


def burn_until(event: threading.Event) -> None:
    while not event.wait(0.001):
        sum(range(200))


class TestLifecycle:
    def test_start_stop_idempotent(self):
        profiler = StageProfiler(hz=200.0)
        assert not profiler.running
        profiler.start()
        profiler.start()  # second start is a no-op
        assert profiler.running
        profiler.stop()
        profiler.stop()
        assert not profiler.running

    def test_context_manager(self):
        with StageProfiler(hz=200.0) as profiler:
            assert profiler.running
        assert not profiler.running

    def test_validation(self):
        with pytest.raises(ValueError):
            StageProfiler(hz=0.0)
        with pytest.raises(ValueError):
            StageProfiler(max_stacks=0)
        with pytest.raises(ValueError):
            StageProfiler(max_depth=0)


class TestSampling:
    def test_samples_running_threads_into_folded_stacks(self):
        stop = threading.Event()
        worker = threading.Thread(target=burn_until, args=(stop,), daemon=True)
        worker.start()
        try:
            with StageProfiler(hz=500.0) as profiler:
                deadline = time.monotonic() + 5.0
                while profiler.stats()["samples"] == 0 and time.monotonic() < deadline:
                    time.sleep(0.01)
                snapshot = profiler.snapshot()
        finally:
            stop.set()
            worker.join()
        assert snapshot["samples"] > 0
        assert snapshot["stacks"], "expected at least one folded stack"
        top = snapshot["stacks"][0]
        assert top["samples"] >= 1
        # Folded stacks are outermost-first, semicolon-joined frames.
        assert ";" in top["stack"] or "(" in top["stack"]

    def test_stage_tagging_attributes_samples(self):
        stop = threading.Event()
        profiler = StageProfiler(hz=500.0)

        def tagged_burn():
            with profiler.tag("gateway.predict"):
                burn_until(stop)

        worker = threading.Thread(target=tagged_burn, daemon=True)
        worker.start()
        try:
            with profiler:
                deadline = time.monotonic() + 5.0
                while (
                    profiler.snapshot()["stages"].get("gateway.predict", 0) == 0
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                stages = profiler.snapshot()["stages"]
        finally:
            stop.set()
            worker.join()
        assert stages.get("gateway.predict", 0) > 0

    def test_call_tagged_restores_the_previous_stage(self):
        profiler = StageProfiler()
        ident = threading.get_ident()
        with profiler.tag("outer"):
            assert profiler._stages[ident] == "outer"
            result = profiler.call_tagged("inner", lambda x: x + 1, 41)
            assert result == 42
            assert profiler._stages[ident] == "outer"  # inner tag unwound
        assert ident not in profiler._stages

    def test_distinct_stack_count_is_bounded(self):
        profiler = StageProfiler(hz=100.0, max_stacks=2)
        # Drive _sample_once directly with synthetic stages to overflow the cap.
        for index in range(10):
            profiler._samples[(f"stage-{index % 2}", f"stack-{index % 2}")] = 1
        profiler._stages = {}
        profiler._sample_once(skip_ident=-1)  # real threads: new keys dropped
        assert len(profiler._samples) <= profiler.max_stacks + 1
        # (+1 tolerance: the sampler may land on an already-retained key)


class TestExports:
    def seeded(self) -> StageProfiler:
        profiler = StageProfiler()
        profiler._samples[("gateway.predict", "run (a.py);step (b.py)")] = 7
        profiler._samples[("untagged", "loop (c.py)")] = 3
        return profiler

    def test_snapshot_ranks_hottest_first_and_honours_limit(self):
        profiler = self.seeded()
        snapshot = profiler.snapshot()
        assert [stack["samples"] for stack in snapshot["stacks"]] == [7, 3]
        assert snapshot["stages"] == {"gateway.predict": 7, "untagged": 3}
        assert len(profiler.snapshot(limit=1)["stacks"]) == 1

    def test_folded_lines_are_flamegraph_input(self):
        lines = self.seeded().folded()
        assert lines[0] == "gateway.predict;run (a.py);step (b.py) 7"
        assert lines[1] == "untagged;loop (c.py) 3"

    def test_export_jsonl_round_trips(self, tmp_path):
        path = tmp_path / "profile.jsonl"
        count = self.seeded().export_jsonl(str(path))
        assert count == 2
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[0] == {
            "stage": "gateway.predict",
            "stack": "run (a.py);step (b.py)",
            "samples": 7,
        }

    def test_clear_resets_samples_but_keeps_config(self):
        profiler = self.seeded()
        profiler.clear()
        assert profiler.snapshot()["stacks"] == []
        assert profiler.max_stacks == 512

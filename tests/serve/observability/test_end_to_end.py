"""Acceptance: one request, one trace, across the wire; OBSERVE pulls it all.

The ISSUE's acceptance scenario: a predict through ``RemoteClient`` against a
two-replica cluster at 100% sampling yields **one trace** — client submit →
gateway → router → admission queue → dispatch → replica server → middleware
hooks → model — linked by parent ids across the client/server boundary, and
an ``OBSERVE`` round trip returns the cluster-wide metrics snapshot plus that
trace's server-side spans.  A mid-run replica kill produces a complete,
error-annotated trace with zero orphans; always-sample-on-error keeps failure
traces even at ``sample_rate = 0``.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.models import model_factory
from repro.serve import (
    Batcher,
    ClusterRouter,
    ConsistentHashPolicy,
    FailoverExhausted,
    GatewayServer,
    RemoteClient,
    ReplicaWorker,
    Telemetry,
    Tracer,
)

from ..conftest import lenet_bundle


def make_traced_cluster(tracer: Tracer) -> ClusterRouter:
    replicas = [
        ReplicaWorker(
            f"r{index}",
            batcher=Batcher(max_batch_size=8, max_wait=0.002, padding="full"),
            middleware=[Telemetry()],
            tracer=tracer,
        )
        for index in range(2)
    ]
    return ClusterRouter(
        replicas,
        placement=ConsistentHashPolicy(replication_factor=2, vnodes=16),
        tracer=tracer,
    )


def register_lenet(router: ClusterRouter, model_id: str = "lenet") -> None:
    router.register(model_id, lenet_bundle(), model_factory("lenet", in_channels=1, seed=3))


def assert_linked(spans, expect_roots: int = 1) -> None:
    """Structural trace checks: one trace id, resolvable parents, no orphans."""
    assert spans, "expected a non-empty trace"
    assert len({span["trace_id"] for span in spans}) == 1
    by_id = {span["span_id"]: span for span in spans}
    roots = [span for span in spans if span["parent_id"] is None]
    assert len(roots) == expect_roots
    for span in spans:
        if span["parent_id"] is not None:
            assert span["parent_id"] in by_id, f"orphan span: {span['name']}"


@pytest.fixture
def sample() -> np.ndarray:
    return np.random.default_rng(5).standard_normal((1, 28, 28)).astype(np.float32)


class TestOneRequestOneTrace:
    def test_remote_predict_traces_every_hop_across_the_wire(self, sample):
        server_tracer = Tracer(sample_rate=1.0, rng=random.Random(1))
        client_tracer = Tracer(sample_rate=1.0, rng=random.Random(2))
        router = make_traced_cluster(server_tracer)
        register_lenet(router)
        with router:
            with GatewayServer(router, tracer=server_tracer, server_id="obs") as gateway:
                with RemoteClient(*gateway.address, tracer=client_tracer) as client:
                    client.predict("lenet", sample)
                    payload = client.observe()

        client_spans = client_tracer.recent_spans()
        assert [span["name"] for span in client_spans] == ["client.submit"]
        remote_spans = payload["spans"]
        union = client_spans + remote_spans
        assert_linked(union)  # one trace, the client root, zero orphans

        # Every hop of the acceptance path is present, on the right side.
        names = {span["name"] for span in remote_spans}
        assert {
            "gateway.request",
            "router.submit",
            "router.admission",
            "router.dispatch",
            "server.request",
            "model",
            "Telemetry.on_request",
            "Telemetry.on_response",
        } <= names

        # The wire link: the gateway span's parent is the client's root span.
        by_name = {span["name"]: span for span in remote_spans}
        [client_root] = client_spans
        assert by_name["gateway.request"]["parent_id"] == client_root["span_id"]
        assert by_name["gateway.request"]["trace_id"] == client_root["trace_id"]
        # Nobody re-rolled sampling along the way.
        assert all(span["sampled"] for span in union)

    def test_observe_returns_the_unified_cluster_snapshot(self, sample):
        tracer = Tracer(sample_rate=1.0, rng=random.Random(3))
        router = make_traced_cluster(tracer)
        register_lenet(router)
        with router:
            with GatewayServer(router, tracer=tracer, server_id="obs") as gateway:
                with RemoteClient(*gateway.address) as client:
                    client.predict("lenet", sample)
                    payload = client.observe()
                    metrics_only = client.observe(what="metrics")
                    spans_only = client.observe(what="spans", max_spans=4)

        assert payload["server_id"] == "obs"
        metrics = payload["metrics"]
        # One snapshot spans the edge (gateway) and the whole cluster.
        for section in ("gateway", "router", "admission", "health", "replicas", "models"):
            assert section in metrics, f"missing metrics section '{section}'"
        assert metrics["gateway"]["responses"] == 1
        assert metrics["admission"]["dispatched"] >= 1
        assert set(metrics["replicas"]) == {"r0", "r1"}
        assert payload["tracer"]["spans_retained"] > 0
        assert "metrics" not in spans_only and "spans" not in metrics_only
        assert len(spans_only["spans"]) <= 4

    def test_router_stats_is_a_view_over_the_registry(self):
        tracer = Tracer(sample_rate=1.0, rng=random.Random(4))
        router = make_traced_cluster(tracer)
        register_lenet(router)
        stats = router.stats()
        collected = router.metrics.collect(router._STATS_SECTIONS)
        assert set(stats) == set(collected) == set(router._STATS_SECTIONS)
        assert stats["shard_map"] == collected["shard_map"]

    def test_untraced_stack_serves_with_zero_spans(self, sample):
        """tracer=None is the fast path: nothing traced, everything works."""
        router = ClusterRouter(
            [
                ReplicaWorker(
                    "r0", batcher=Batcher(max_batch_size=8, max_wait=0.002)
                )
            ]
        )
        register_lenet(router)
        with router:
            with GatewayServer(router) as gateway:
                with RemoteClient(*gateway.address) as client:
                    output = client.predict("lenet", sample)
                    payload = client.observe()
        assert output.shape == (10,)
        assert payload["spans"] == [] and payload["tracer"] is None
        assert "gateway" in payload["metrics"]  # metrics still flow untraced


class TestFailureTraces:
    def test_mid_run_replica_kill_leaves_a_complete_error_annotated_trace(self, sample):
        server_tracer = Tracer(sample_rate=1.0, rng=random.Random(5))
        client_tracer = Tracer(sample_rate=1.0, rng=random.Random(6))
        router = make_traced_cluster(server_tracer)
        register_lenet(router)
        with router:
            with GatewayServer(router, tracer=server_tracer) as gateway:
                with RemoteClient(*gateway.address, tracer=client_tracer) as client:
                    client.predict("lenet", sample)  # warm: both replicas alive
                    # Freshen the health view, then kill the placement's first
                    # choice — the next dispatch genuinely attempts the corpse
                    # and must fail over.
                    router.check_health()
                    primary = router.shard_map()["lenet"][0]
                    router.replica(primary).kill()
                    output = client.predict("lenet", sample)  # succeeds via failover
                    payload = client.observe()
        assert output.shape == (10,)

        failover_root = client_tracer.recent_spans()[-1]
        trace = [
            span
            for span in payload["spans"]
            if span["trace_id"] == failover_root["trace_id"]
        ]
        assert_linked([failover_root] + trace)
        dispatches = sorted(
            (span for span in trace if span["name"] == "router.dispatch"),
            key=lambda span: span["attributes"]["attempt"],
        )
        assert len(dispatches) == 2
        assert dispatches[0]["error"] is not None  # the killed primary
        assert dispatches[0]["attributes"]["replica_id"] == primary
        assert dispatches[1]["error"] is None  # the survivor answered
        [root] = [span for span in trace if span["name"] == "router.submit"]
        assert root["attributes"]["failover_attempts"] == 2

    def test_errors_survive_sampling_off(self, sample):
        """always-sample-on-error: a dead cluster's trace is kept at rate 0."""
        tracer = Tracer(sample_rate=0.0, rng=random.Random(7))
        router = make_traced_cluster(tracer)
        register_lenet(router)
        router.check_health()
        for replica_id in router.replica_ids():
            router.replica(replica_id).kill()
        with pytest.raises(FailoverExhausted):
            router.predict("lenet", sample)
        retained = tracer.recent_spans()
        assert retained, "error spans must be retained with sampling off"
        assert all(span["error"] is not None for span in retained)
        assert all(not span["sampled"] for span in retained)
        names = {span["name"] for span in retained}
        assert "router.predict" in names and "router.dispatch" in names

"""SLO engine: objectives, burn-rate rules, AlertManager, TOML parsing."""

from __future__ import annotations

import pytest

from repro.serve import (
    SLO,
    AlertManager,
    AvailabilityObjective,
    BurnRateRule,
    LatencyObjective,
    SLOConfigError,
    WindowedSeriesStore,
    register_slo,
    registered_slos,
    slo_from_spec,
)
from repro.serve.observability.slo import default_rules


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock(start=0.0)


@pytest.fixture
def store(clock: FakeClock) -> WindowedSeriesStore:
    return WindowedSeriesStore(interval=1.0, buckets=600, clock=clock)


def feed_latency(store, clock, seconds: int, value: float, per_second: int = 20) -> None:
    for _ in range(seconds):
        clock.advance(1.0)
        for _ in range(per_second):
            store.record_observation("gateway.latency_ms", value)


def feed_traffic(store, clock, seconds: int, ok: int, errors: int) -> None:
    for _ in range(seconds):
        clock.advance(1.0)
        store.record_counter_delta("gateway.requests", ok + errors)
        store.record_counter_delta("gateway.errors", errors)


class TestObjectives:
    def test_latency_budget_is_one_minus_quantile(self):
        objective = LatencyObjective("gateway.latency_ms", target_ms=50.0, quantile=0.95)
        assert objective.budget == pytest.approx(0.05)

    def test_latency_bad_fraction_is_the_share_above_target(self, store, clock):
        objective = LatencyObjective("gateway.latency_ms", target_ms=50.0)
        assert objective.bad_fraction(store, 60.0) is None  # no data yet
        feed_latency(store, clock, seconds=5, value=10.0, per_second=30)
        feed_latency(store, clock, seconds=5, value=100.0, per_second=10)
        fraction = objective.bad_fraction(store, 10.0)
        assert fraction == pytest.approx(0.25, abs=0.03)

    def test_availability_bad_fraction_is_the_error_ratio(self, store, clock):
        objective = AvailabilityObjective("gateway.requests", "gateway.errors", 0.999)
        assert objective.bad_fraction(store, 60.0) is None  # no traffic
        feed_traffic(store, clock, seconds=10, ok=95, errors=5)
        assert objective.bad_fraction(store, 10.0) == pytest.approx(0.05)

    def test_objective_validation(self):
        with pytest.raises(ValueError):
            LatencyObjective("s", target_ms=0.0)
        with pytest.raises(ValueError):
            LatencyObjective("s", target_ms=1.0, quantile=1.0)
        with pytest.raises(ValueError):
            AvailabilityObjective("t", "e", objective=1.0)


class TestBurnRateRule:
    def test_fires_only_when_both_windows_agree(self):
        rule = BurnRateRule(short_window=300, long_window=3600, factor=14.4)
        assert rule.evaluate(20.0, 1.0) is None  # spike, long window calm
        assert rule.evaluate(1.0, 20.0) is None  # stale burn, bleeding stopped
        assert rule.evaluate(20.0, 20.0) == "firing"
        assert rule.firing

    def test_no_data_neither_fires_nor_resolves(self):
        rule = BurnRateRule(300, 3600, 1.0)
        assert rule.evaluate(None, 5.0) is None
        rule.evaluate(5.0, 5.0)
        assert rule.firing
        assert rule.evaluate(None, 0.0) is None
        assert rule.firing  # silence is not evidence of health

    def test_hysteresis_band_prevents_flapping(self):
        rule = BurnRateRule(300, 3600, factor=10.0, resolve_fraction=0.9)
        rule.evaluate(11.0, 11.0)
        assert rule.firing
        # Dropping just below the firing threshold is NOT enough to resolve.
        assert rule.evaluate(9.5, 9.5) is None
        assert rule.firing
        # ... and re-crossing while firing emits nothing (no duplicate fire).
        assert rule.evaluate(11.0, 11.0) is None
        # Only below factor × resolve_fraction does it clear.
        assert rule.evaluate(8.9, 8.9) == "resolved"
        assert not rule.firing

    def test_default_rules_scale_for_tests(self):
        page, ticket = default_rules(scale=1 / 300)
        assert page.short_window == pytest.approx(1.0)
        assert page.factor == 14.4 and page.severity == "page"
        assert ticket.factor == 1.0 and ticket.severity == "ticket"

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            BurnRateRule(0.0, 10.0, 1.0)
        with pytest.raises(ValueError):
            BurnRateRule(10.0, 5.0, 1.0)
        with pytest.raises(ValueError):
            BurnRateRule(1.0, 2.0, 0.0)
        with pytest.raises(ValueError):
            BurnRateRule(1.0, 2.0, 1.0, resolve_fraction=0.0)


class TestAlertManager:
    def make_manager(self, store, clock) -> AlertManager:
        manager = AlertManager(store, clock=clock)
        manager.add_slo(
            SLO(
                "gateway-latency",
                LatencyObjective("gateway.latency_ms", target_ms=50.0, quantile=0.95),
                rules=[BurnRateRule(5.0, 10.0, factor=2.0, severity="page")],
                clock=clock,
            )
        )
        return manager

    def test_full_fire_resolve_cycle_with_typed_events(self, store, clock):
        manager = self.make_manager(store, clock)
        received = []
        manager.add_listener(received.append)

        feed_latency(store, clock, seconds=12, value=10.0)
        assert manager.evaluate() == []

        feed_latency(store, clock, seconds=12, value=200.0)
        [fired] = manager.evaluate()
        assert (fired.slo, fired.state, fired.severity) == ("gateway-latency", "firing", "page")
        assert fired.burn_rate > 2.0
        assert fired.timestamp == clock.now

        feed_latency(store, clock, seconds=12, value=10.0)
        [resolved] = manager.evaluate()
        assert resolved.state == "resolved"
        assert received == [fired, resolved]
        assert manager.active() == []
        history = manager.history()
        assert [entry["state"] for entry in history] == ["firing", "resolved"]
        stats = manager.stats()
        assert stats["fired"] == 1 and stats["resolved"] == 1 and stats["active"] == 0

    def test_active_lists_firing_rules(self, store, clock):
        manager = self.make_manager(store, clock)
        feed_latency(store, clock, seconds=12, value=200.0)
        manager.evaluate()
        [active] = manager.active()
        assert active["slo"] == "gateway-latency" and active["severity"] == "page"

    def test_listener_errors_are_swallowed_and_counted(self, store, clock):
        manager = self.make_manager(store, clock)

        def bad_listener(event):
            raise RuntimeError("pager service down")

        manager.add_listener(bad_listener)
        feed_latency(store, clock, seconds=12, value=200.0)
        events = manager.evaluate()  # must not raise
        assert len(events) == 1
        assert manager.stats()["listener_errors"] == 1

    def test_duplicate_slo_names_are_rejected(self, store, clock):
        manager = self.make_manager(store, clock)
        with pytest.raises(ValueError):
            manager.add_slo(
                SLO("gateway-latency", LatencyObjective("x", 1.0), rules=default_rules())
            )

    def test_event_to_dict_is_json_shaped(self, store, clock):
        manager = self.make_manager(store, clock)
        feed_latency(store, clock, seconds=12, value=200.0)
        [event] = manager.evaluate()
        payload = event.to_dict()
        assert payload["slo"] == "gateway-latency"
        assert payload["state"] == "firing"
        assert set(payload) == {
            "slo",
            "severity",
            "state",
            "burn_rate",
            "budget_remaining",
            "short_window",
            "long_window",
            "timestamp",
        }

    def test_background_evaluator_thread_fires(self, store, clock):
        import time as _time

        manager = self.make_manager(store, clock)
        feed_latency(store, clock, seconds=12, value=200.0)
        with manager.start(interval=0.01):
            deadline = _time.monotonic() + 5.0
            while not manager.active() and _time.monotonic() < deadline:
                _time.sleep(0.01)
        assert manager.active(), "the daemon should have evaluated and fired"


class TestSpecParsing:
    def spec(self, **overrides):
        table = {
            "window_scale": 1.0,
            "objectives": [
                {
                    "name": "gateway-latency",
                    "type": "latency",
                    "series": "gateway.latency_ms",
                    "target_ms": 50.0,
                    "quantile": 0.95,
                },
                {
                    "name": "gateway-availability",
                    "type": "availability",
                    "total": "gateway.requests",
                    "errors": "gateway.errors",
                    "objective": 0.999,
                },
            ],
        }
        table.update(overrides)
        return table

    def test_builds_a_manager_from_the_toml_shape(self, store, clock):
        manager = slo_from_spec(self.spec(), store, clock=clock)
        described = {entry["name"]: entry for entry in manager.describe()}
        assert set(described) == {"gateway-latency", "gateway-availability"}
        assert described["gateway-latency"]["objective"]["type"] == "latency"
        assert described["gateway-availability"]["objective"]["objective"] == 0.999
        # Each SLO gets the SRE-workbook rule pair.
        assert [rule["severity"] for rule in described["gateway-latency"]["rules"]] == [
            "page",
            "ticket",
        ]

    def test_window_scale_shrinks_rule_windows(self, store, clock):
        manager = slo_from_spec(self.spec(window_scale=1 / 300), store, clock=clock)
        rules = manager.describe()[0]["rules"]
        assert rules[0]["short_window"] == pytest.approx(1.0)

    def test_unwraps_the_observability_block(self, store, clock):
        wrapped = {"sample_rate": 1.0, "slo": self.spec()}
        manager = slo_from_spec(wrapped, store, clock=clock)
        assert len(manager.describe()) == 2

    def test_absent_block_is_none(self, store):
        assert slo_from_spec(None, store) is None
        assert slo_from_spec({}, store) is None

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda t: t.update(bogus=1), "unknown"),
            (lambda t: t.update(window_scale=-1.0), "window_scale"),
            (lambda t: t.update(objectives=[]), "objectives"),
            (lambda t: t.update(objectives="nope"), "objectives"),
            (lambda t: t["objectives"][0].pop("name"), "name"),
            (lambda t: t["objectives"][0].pop("series"), "series"),
            (lambda t: t["objectives"][0].update(type="bogus"), "unknown type"),
            (lambda t: t["objectives"][0].update(target_ms="fast"), "target_ms"),
            (lambda t: t["objectives"][1].pop("total"), "total"),
        ],
    )
    def test_shape_errors_are_typed_and_eager(self, store, mutate, fragment):
        table = self.spec()
        mutate(table)
        with pytest.raises(SLOConfigError, match=fragment):
            slo_from_spec(table, store)

    def test_duplicate_objective_names_are_config_errors(self, store):
        table = self.spec()
        table["objectives"][1]["name"] = table["objectives"][0]["name"]
        with pytest.raises(SLOConfigError, match="already registered"):
            slo_from_spec(table, store)


class TestRegisterSlo:
    def test_user_registered_type_builds_from_spec(self, store, clock):
        name = "always-bad-test-type"
        if name not in registered_slos():

            @register_slo(name)
            class AlwaysBad:
                def __init__(self, level: float = 1.0) -> None:
                    self.level = level
                    self.budget = 0.01

                def bad_fraction(self, store, window):
                    return self.level

                def describe(self):
                    return {"type": name, "level": self.level}

        table = {
            "objectives": [{"name": "custom", "type": name, "level": 0.5}],
        }
        manager = slo_from_spec(table, store, clock=clock)
        [described] = manager.describe()
        assert described["objective"]["level"] == 0.5

    def test_duplicate_registration_is_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_slo("latency", lambda: None)

    def test_builtins_are_registered(self):
        assert {"latency", "availability"} <= set(registered_slos())

"""WindowedSeriesStore: bucket rollover, counter rates, windowed quantiles."""

from __future__ import annotations

import threading

import pytest

from repro.serve import MetricsRegistry, QuantileSketch, WindowedSeriesStore


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock(start=1000.0)


@pytest.fixture
def store(clock: FakeClock) -> WindowedSeriesStore:
    return WindowedSeriesStore(interval=1.0, buckets=10, clock=clock)


class TestQuantileSketch:
    def test_empty_sketch_answers_none(self):
        sketch = QuantileSketch()
        assert sketch.quantile(0.5) is None
        assert sketch.fraction_at_or_below(1.0) is None
        assert sketch.count == 0

    def test_exact_extremes_and_totals(self):
        sketch = QuantileSketch()
        for value in [5.0, 1.0, 3.0, 9.0, 7.0]:
            sketch.observe(value)
        assert sketch.min == 1.0
        assert sketch.max == 9.0
        assert sketch.count == 5
        assert sketch.sum == pytest.approx(25.0)
        assert sketch.quantile(0.0) == 1.0
        assert sketch.quantile(1.0) == 9.0

    def test_median_of_a_known_stream(self):
        sketch = QuantileSketch(epsilon=0.01)
        for value in range(1, 101):
            sketch.observe(float(value))
        # ε = 0.01 over n = 100 allows ±1 rank around the 50th value.
        assert sketch.quantile(0.5) in {49.0, 50.0, 51.0}

    def test_memory_stays_bounded(self):
        sketch = QuantileSketch(epsilon=0.05)
        for value in range(100_000):
            sketch.observe(float(value % 997))
        # GK retains O(1/ε · log(εn)) entries — far below the stream length.
        assert sketch.snapshot()["entries"] < 1_000

    def test_cdf_brackets_the_threshold(self):
        sketch = QuantileSketch(epsilon=0.01)
        for value in range(1, 1001):
            sketch.observe(float(value))
        fraction = sketch.fraction_at_or_below(250.0)
        assert fraction == pytest.approx(0.25, abs=0.05)
        assert sketch.fraction_at_or_below(0.0) == 0.0
        assert sketch.fraction_at_or_below(1000.0) == 1.0

    def test_epsilon_is_validated(self):
        with pytest.raises(ValueError):
            QuantileSketch(epsilon=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(epsilon=0.7)


class TestCounterSeries:
    def test_increase_is_the_windowed_delta_of_a_cumulative_value(
        self, store: WindowedSeriesStore, clock: FakeClock
    ):
        store.record_counter("requests", 10)
        clock.advance(1.0)
        store.record_counter("requests", 25)
        clock.advance(1.0)
        store.record_counter("requests", 30)
        assert store.increase("requests") == pytest.approx(30.0)
        assert store.increase("requests", window=2.0) == pytest.approx(20.0)

    def test_rate_divides_by_the_window_span(self, store, clock):
        store.record_counter("requests", 0)
        for _ in range(4):
            clock.advance(1.0)
            store.record_counter("requests", store.increase("requests") + 5)
        assert store.rate("requests", window=4.0) == pytest.approx(5.0)

    def test_counter_reset_is_not_a_negative_increase(self, store, clock):
        store.record_counter("requests", 100)
        clock.advance(1.0)
        store.record_counter("requests", 3)  # process restarted
        # The post-reset cumulative value is the new delta, never negative.
        assert store.increase("requests", window=1.0) == pytest.approx(3.0)

    def test_old_buckets_age_out_of_the_window(self, store, clock):
        store.record_counter("requests", 50)
        clock.advance(20.0)  # past the 10-bucket retention
        store.record_counter("requests", 51)
        assert store.increase("requests") == pytest.approx(1.0)

    def test_unknown_series_is_zero(self, store):
        assert store.increase("nope") == 0.0
        assert store.rate("nope") == 0.0


class TestGaugeAndObservationSeries:
    def test_gauge_keeps_the_last_value(self, store, clock):
        assert store.last("depth") is None
        store.record_gauge("depth", 4.0)
        store.record_gauge("depth", 9.0)
        clock.advance(1.0)
        store.record_gauge("depth", 2.0)
        assert store.last("depth") == 2.0

    def test_windowed_quantile_over_one_bucket(self, store):
        for value in range(1, 101):
            store.record_observation("latency", float(value))
        p95 = store.quantile("latency", 0.95)
        assert p95 == pytest.approx(95.0, abs=3.0)

    def test_windowed_quantile_spans_buckets_by_count_weight(self, store, clock):
        for _ in range(90):
            store.record_observation("latency", 10.0)
        clock.advance(1.0)
        for _ in range(10):
            store.record_observation("latency", 1000.0)
        # 90% of the window's mass sits at 10ms: the median must be there,
        # and the tail must see the slow bucket.
        assert store.quantile("latency", 0.5) == pytest.approx(10.0, rel=0.1)
        assert store.quantile("latency", 0.99) == pytest.approx(1000.0, rel=0.1)

    def test_fraction_above_is_the_bad_event_ratio(self, store, clock):
        for _ in range(75):
            store.record_observation("latency", 10.0)
        clock.advance(1.0)
        for _ in range(25):
            store.record_observation("latency", 500.0)
        fraction = store.fraction_above("latency", 100.0)
        assert fraction == pytest.approx(0.25, abs=0.03)
        assert store.fraction_above("latency", 100.0, window=1.0) == pytest.approx(1.0)

    def test_quantile_without_samples_is_none(self, store, clock):
        assert store.quantile("latency", 0.95) is None
        store.record_observation("latency", 5.0)
        clock.advance(50.0)  # everything aged out
        assert store.quantile("latency", 0.95) is None
        assert store.fraction_above("latency", 1.0) is None

    def test_quantile_source_closure_feeds_autoscaling(self, store):
        source = store.quantile_source("latency", 0.95, window=5.0)
        assert source() is None
        for value in range(100):
            store.record_observation("latency", float(value))
        assert source() == pytest.approx(95.0, abs=4.0)

    def test_kind_collisions_are_counted_not_corrupting(self, store):
        store.record_counter("metric", 5)
        store.record_observation("metric", 1.0)  # wrong kind: dropped
        store.record_gauge("metric", 2.0)  # wrong kind: dropped
        assert store.increase("metric") == pytest.approx(5.0)
        assert store.stats()["dropped_updates"] == 2


class TestRegistryIntegration:
    def test_attach_gives_every_instrument_history_for_free(self, clock):
        registry = MetricsRegistry()
        store = WindowedSeriesStore(interval=1.0, buckets=16, clock=clock).attach(registry)
        counter = registry.counter("gateway.requests")
        histogram = registry.histogram("gateway.latency_ms")
        counter.inc()
        counter.inc(4)
        for value in (5.0, 7.0, 9.0):
            histogram.observe(value)
        registry.gauge("router.replicas").set(3)
        assert store.increase("gateway.requests") == pytest.approx(5.0)
        assert store.observation_count("gateway.latency_ms") == 3
        assert store.last("router.replicas") == 3.0

    def test_instruments_created_before_attach_are_wired_retroactively(self, clock):
        registry = MetricsRegistry()
        counter = registry.counter("pre.existing")
        store = WindowedSeriesStore(interval=1.0, buckets=16, clock=clock).attach(registry)
        counter.inc(7)
        assert store.increase("pre.existing") == pytest.approx(7.0)

    def test_detached_observer_stops_receiving(self, clock):
        registry = MetricsRegistry()
        store = WindowedSeriesStore(interval=1.0, buckets=16, clock=clock).attach(registry)
        registry.counter("c").inc()
        registry.remove_observer(store)
        registry.counter("c").inc(100)
        assert store.increase("c") == pytest.approx(1.0)

    def test_a_failing_observer_never_breaks_instruments(self):
        registry = MetricsRegistry()

        class Broken:
            def on_counter(self, name, value):
                raise RuntimeError("observer bug")

        registry.add_observer(Broken())
        registry.counter("c").inc()  # must not raise
        assert registry.counter("c").value == 1

    def test_concurrent_recording_is_consistent(self, clock):
        registry = MetricsRegistry()
        store = WindowedSeriesStore(interval=60.0, buckets=4, clock=clock).attach(registry)
        counter = registry.counter("hits")
        threads = [
            threading.Thread(target=lambda: [counter.inc() for _ in range(500)])
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000
        # Cumulative deltas may interleave, but the windowed total converges
        # to the true count (no delta is lost or double-counted).
        assert store.increase("hits") == pytest.approx(4000.0)


class TestSnapshotShape:
    def test_snapshot_is_json_shaped_history(self, store, clock):
        store.record_counter("c", 5)
        store.record_gauge("g", 1.5)
        store.record_observation("o", 3.0)
        clock.advance(1.0)
        store.record_counter("c", 9)
        snapshot = store.snapshot()
        assert set(snapshot["series"]) == {"c", "g", "o"}
        assert snapshot["series"]["c"]["kind"] == "counter"
        assert [point["increase"] for point in snapshot["series"]["c"]["points"]] == [5.0, 4.0]
        assert snapshot["series"]["o"]["points"][0]["count"] == 1

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            WindowedSeriesStore(interval=0.0, clock=clock)
        with pytest.raises(ValueError):
            WindowedSeriesStore(buckets=1, clock=clock)

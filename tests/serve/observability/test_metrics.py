"""MetricsRegistry: instruments, providers, collect-as-view, snapshots."""

from __future__ import annotations

import pytest

from repro.serve import (
    Batcher,
    MetricsRegistry,
    MiddlewareChain,
    ModelStats,
    RateLimiter,
    ResponseCache,
)


class TestInstruments:
    def test_counters_are_created_once_and_shared(self):
        metrics = MetricsRegistry()
        metrics.counter("gateway.requests").inc()
        metrics.counter("gateway.requests").inc(2)
        assert metrics.counter("gateway.requests").value == 3

    def test_gauge_holds_the_last_value(self):
        metrics = MetricsRegistry()
        metrics.gauge("router.replicas").set(3)
        metrics.gauge("router.replicas").set(2)
        assert metrics.gauge("router.replicas").value == 2.0

    def test_histogram_summarises_the_window(self):
        metrics = MetricsRegistry()
        histogram = metrics.histogram("latency", window=8)
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["p50"] == pytest.approx(2.5)

    def test_empty_histogram_summary_is_zeroed(self):
        assert MetricsRegistry().histogram("x").summary() == {
            "count": 0,
            "mean": 0.0,
            "p50": 0.0,
            "p95": 0.0,
        }

    def test_instruments_section_is_sorted_and_complete(self):
        metrics = MetricsRegistry()
        metrics.counter("b.count").inc()
        metrics.counter("a.count").inc()
        metrics.gauge("depth").set(7)
        section = metrics.instruments()
        assert list(section["counters"]) == ["a.count", "b.count"]
        assert section["gauges"] == {"depth": 7.0}


class TestProviders:
    def test_collect_returns_exactly_the_named_sections(self):
        metrics = MetricsRegistry()
        metrics.register_provider("a", lambda: {"x": 1})
        metrics.register_provider("b", lambda: {"y": 2})
        assert metrics.collect(["b", "a"]) == {"b": {"y": 2}, "a": {"x": 1}}
        with pytest.raises(KeyError):
            metrics.collect(["a", "ghost"])

    def test_duplicate_provider_needs_replace(self):
        metrics = MetricsRegistry()
        metrics.register_provider("a", lambda: {})
        with pytest.raises(ValueError, match="already registered"):
            metrics.register_provider("a", lambda: {})
        metrics.register_provider("a", lambda: {"v": 2}, replace=True)
        assert metrics.collect(["a"]) == {"a": {"v": 2}}

    def test_bind_accepts_stats_and_snapshot_surfaces(self):
        metrics = MetricsRegistry()
        metrics.bind("batcher", Batcher(max_batch_size=4))  # stats()
        metrics.bind("model", ModelStats(max_batch_size=4))  # snapshot()
        sections = metrics.collect(["batcher", "model"])
        assert sections["batcher"]["max_batch_size"] == 4
        assert sections["model"]["requests"] == 0

    def test_bind_rejects_sourceless_objects(self):
        with pytest.raises(TypeError, match="stats\\(\\)/snapshot\\(\\)"):
            MetricsRegistry().bind("x", object())

    def test_bind_chain_surfaces_every_middleware_with_stats(self):
        metrics = MetricsRegistry()
        chain = MiddlewareChain(
            [RateLimiter(rate=100, capacity=100), ResponseCache(capacity=4)]
        )
        bound = metrics.bind_chain(chain)
        assert bound == ["middleware.RateLimiter", "middleware.ResponseCache"]
        snapshot = metrics.snapshot()
        assert "hits" in snapshot["middleware.ResponseCache"]

    def test_snapshot_survives_a_raising_provider(self):
        metrics = MetricsRegistry()
        metrics.register_provider("good", lambda: {"ok": True})

        def bad():
            raise RuntimeError("component mid-teardown")

        metrics.register_provider("bad", bad)
        snapshot = metrics.snapshot()
        assert snapshot["good"] == {"ok": True}
        assert snapshot["bad"] == {"error": "RuntimeError: component mid-teardown"}
        assert "instruments" in snapshot

    def test_record_stage_tallies_and_delegates(self):
        metrics = MetricsRegistry()
        stats = ModelStats(max_batch_size=2)
        metrics.record_stage("lenet", "model", 0.25, stats)
        metrics.record_stage("lenet", "model", 0.25, None)  # no stats attached
        assert metrics.counter("telemetry.stages_recorded").value == 2
        assert stats.stages()["model"]["count"] == 1

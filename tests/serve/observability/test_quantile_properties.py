"""Property tests (hypothesis): the GK sketch's ε rank-error guarantee.

The sketch promises: for any stream and any q, the returned value's *rank*
in the sorted stream is within ``ε·n`` of ``q·n``.  We verify against exact
sorted ranks — a value satisfies the bound iff the count of stream elements
strictly below it (min rank) and at or below it (max rank) bracket an
interval overlapping ``[q·n − ε·n, q·n + ε·n]``.
"""

from __future__ import annotations

import bisect

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import QuantileSketch

values = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=32
)
streams = st.lists(values, min_size=1, max_size=400)
quantiles = st.floats(min_value=0.01, max_value=0.99)
epsilons = st.sampled_from((0.01, 0.05, 0.1))


def rank_bounds(sorted_stream, value):
    """(min_rank, max_rank) of ``value`` in the sorted stream, 1-based."""
    low = bisect.bisect_left(sorted_stream, value)
    high = bisect.bisect_right(sorted_stream, value)
    return low + 1, high


@given(stream=streams, q=quantiles, epsilon=epsilons)
@settings(max_examples=200, deadline=None)
def test_quantile_rank_error_is_within_epsilon(stream, q, epsilon):
    sketch = QuantileSketch(epsilon=epsilon)
    for value in stream:
        sketch.observe(value)
    answer = sketch.quantile(q)
    assert answer is not None
    ordered = sorted(stream)
    assert answer in stream  # GK returns a real stream element, never invented
    n = len(stream)
    target = q * n
    slack = epsilon * n + 1.0  # +1: rank is integral, target need not be
    min_rank, max_rank = rank_bounds(ordered, answer)
    assert min_rank - slack <= target <= max_rank + slack, (
        f"rank({answer}) in [{min_rank}, {max_rank}] vs target {target} ± {slack}"
    )


@given(stream=streams)
@settings(max_examples=100, deadline=None)
def test_extremes_count_and_sum_are_exact(stream):
    sketch = QuantileSketch(epsilon=0.05)
    for value in stream:
        sketch.observe(value)
    assert sketch.min == min(stream)
    assert sketch.max == max(stream)
    assert sketch.count == len(stream)
    assert abs(sketch.sum - sum(stream)) <= 1e-6 * max(1.0, abs(sum(stream)))
    assert sketch.quantile(0.0) == min(stream)
    assert sketch.quantile(1.0) == max(stream)


@given(stream=streams, epsilon=epsilons)
@settings(max_examples=100, deadline=None)
def test_quantiles_are_monotone_in_q(stream, epsilon):
    sketch = QuantileSketch(epsilon=epsilon)
    for value in stream:
        sketch.observe(value)
    answers = [sketch.quantile(q / 10) for q in range(11)]
    assert answers == sorted(answers)


@given(stream=streams, threshold=values)
@settings(max_examples=100, deadline=None)
def test_cdf_error_is_bounded(stream, threshold):
    epsilon = 0.05
    sketch = QuantileSketch(epsilon=epsilon)
    for value in stream:
        sketch.observe(value)
    estimate = sketch.fraction_at_or_below(threshold)
    exact = sum(1 for value in stream if value <= threshold) / len(stream)
    assert estimate is not None
    # The CDF reads off summary ranks: each carries up to ~2ε rank error,
    # plus one element of discretisation.
    assert abs(estimate - exact) <= 2 * epsilon + 1.0 / len(stream) + 1e-9

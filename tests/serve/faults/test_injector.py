"""FaultPlan/FaultInjector semantics: ordinals, determinism, byte mangling."""

from __future__ import annotations

import pytest

from repro.serve import FaultInjector, FaultPlan, FaultRule, ReplicaUnavailable
from repro.serve.faults import (
    SITE_CLIENT_SEND,
    SITE_GATEWAY_SEND,
    SITE_REPLICA_REQUEST,
)
from repro.serve.gateway import decode_payload, encode_frame
from repro.serve.gateway.errors import ProtocolError
from repro.serve.gateway.wire import Goodbye


class StubReplica:
    def __init__(self, replica_id: str = "r0") -> None:
        self.replica_id = replica_id
        self.killed = False

    def kill(self) -> None:
        self.killed = True


class TestRuleValidation:
    def test_unknown_action(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule(SITE_REPLICA_REQUEST, "explode")

    def test_action_site_mismatch(self):
        with pytest.raises(ValueError, match="not valid at site"):
            FaultRule(SITE_REPLICA_REQUEST, "corrupt")
        with pytest.raises(ValueError, match="not valid at site"):
            FaultRule(SITE_GATEWAY_SEND, "crash")

    def test_ordinal_and_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultRule(SITE_GATEWAY_SEND, "delay", after=0)
        with pytest.raises(ValueError):
            FaultRule(SITE_GATEWAY_SEND, "delay", probability=1.5)
        with pytest.raises(ValueError):
            FaultRule(SITE_GATEWAY_SEND, "delay", delay=-1.0)


class TestOrdinals:
    def test_after_and_times_bound_the_firing_window(self):
        plan = FaultPlan().add(
            FaultRule(SITE_GATEWAY_SEND, "delay", after=3, times=2, delay=0.0)
        )
        injector = FaultInjector(plan)
        fired = [bool(injector.on_gateway_send("c")) for _ in range(6)]
        assert fired == [False, False, True, True, False, False]

    def test_unlimited_times(self):
        plan = FaultPlan().add(FaultRule(SITE_GATEWAY_SEND, "delay", times=-1, delay=0.0))
        injector = FaultInjector(plan)
        assert all(injector.on_gateway_send("c") for _ in range(10))

    def test_ordinals_are_counted_per_site_and_target(self):
        plan = FaultPlan().add(
            FaultRule(SITE_GATEWAY_SEND, "delay", target="conn-a", after=2, delay=0.0)
        )
        injector = FaultInjector(plan)
        # conn-b events do not advance conn-a's ordinal.
        assert not injector.on_gateway_send("conn-b")
        assert not injector.on_gateway_send("conn-b")
        assert not injector.on_gateway_send("conn-a")
        assert injector.on_gateway_send("conn-a")

    def test_no_op_injector(self):
        injector = FaultInjector()
        injector.on_replica_request(StubReplica())  # nothing happens
        assert injector.on_gateway_send() == []
        assert not injector.on_client_send()
        assert injector.events() == []


class TestDeterminism:
    def test_same_seed_same_fault_sequence(self):
        def run(seed: int):
            plan = FaultPlan(seed=seed).add(
                FaultRule(
                    SITE_CLIENT_SEND, "reset", times=-1, probability=0.4
                )
            )
            injector = FaultInjector(plan)
            return [injector.on_client_send("x") for _ in range(40)]

        assert run(3) == run(3)
        assert run(3) != run(4)
        assert any(run(3)), "probability 0.4 over 40 events fires at least once"


class TestReplicaSite:
    def test_crash_kills_and_raises_typed(self):
        replica = StubReplica("victim")
        injector = FaultInjector(FaultPlan().crash_replica("victim", on_request=2))
        injector.on_replica_request(replica)
        assert not replica.killed
        with pytest.raises(ReplicaUnavailable):
            injector.on_replica_request(replica)
        assert replica.killed

    def test_slow_replica_goes_through_injected_sleep(self):
        slept = []
        injector = FaultInjector(
            FaultPlan().slow_replica("r0", latency=0.5), sleep=slept.append
        )
        injector.on_replica_request(StubReplica())
        injector.on_replica_request(StubReplica())
        assert slept == [0.5, 0.5]

    def test_fail_replica_uses_the_error_factory(self):
        injector = FaultInjector(
            FaultPlan().fail_replica("r0", error=lambda: TimeoutError("boom"))
        )
        with pytest.raises(TimeoutError, match="boom"):
            injector.on_replica_request(StubReplica())

    def test_fail_replica_defaults_to_replica_unavailable(self):
        injector = FaultInjector(FaultPlan().fail_replica("r0"))
        with pytest.raises(ReplicaUnavailable):
            injector.on_replica_request(StubReplica())

    def test_wildcard_target_matches_any_replica(self):
        injector = FaultInjector(FaultPlan().fail_replica(times=2))
        with pytest.raises(ReplicaUnavailable):
            injector.on_replica_request(StubReplica("a"))
        with pytest.raises(ReplicaUnavailable):
            injector.on_replica_request(StubReplica("b"))


class TestByteMangling:
    def test_corrupt_preserves_length_and_decodes_as_protocol_error(self):
        data = FaultInjector.corrupt_bytes(encode_frame(Goodbye("bye")))
        assert data[:4] == encode_frame(Goodbye("bye"))[:4], "length prefix intact"
        with pytest.raises(ProtocolError):
            decode_payload(data[4:])

    def test_truncate_always_leaves_something(self):
        assert FaultInjector.truncate_bytes(b"x") == b"x"
        assert FaultInjector.truncate_bytes(b"abcdef") == b"abc"


class TestObservability:
    def test_events_and_fired_counts(self):
        injector = FaultInjector(
            FaultPlan()
            .crash_replica("r0", on_request=1)
            .drop_connection(after_frames=1)
        )
        with pytest.raises(ReplicaUnavailable):
            injector.on_replica_request(StubReplica("r0"))
        injector.on_gateway_send("c")
        counts = injector.fired_counts()
        assert counts == {
            "replica.request:crash": 1,
            "gateway.send:disconnect": 1,
        }
        snapshot = injector.snapshot()
        assert snapshot["rules"] == 2
        assert all(entry["fired"] == 1 for entry in snapshot["fired"])

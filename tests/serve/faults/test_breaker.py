"""CircuitBreaker state machine + HealthMonitor integration (fake clock)."""

from __future__ import annotations

import pytest

from repro.serve import CircuitBreaker, HealthMonitor
from repro.serve.faults.breaker import CLOSED, HALF_OPEN, OPEN


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestStateMachine:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_successes=0)

    def test_trips_open_at_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == CLOSED
            assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED, "non-consecutive failures never trip"

    def test_half_open_after_reset_timeout(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow(), "reset_timeout elapsed: probe traffic admitted"
        assert breaker.state == HALF_OPEN

    def test_half_open_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_needs_the_configured_success_streak(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=1.0, half_open_successes=2, clock=clock
        )
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN, "one success is not enough"
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_failure_retrips_immediately(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=1.0, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state == OPEN
        assert breaker.trips == 2

    def test_reset_restores_closed(self):
        breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock())
        breaker.record_failure()
        breaker.reset()
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert breaker.trips == 1, "trip history survives an administrative reset"

    def test_clone_copies_config_not_state(self):
        clock = FakeClock()
        template = CircuitBreaker(failure_threshold=2, reset_timeout=7.0)
        template.record_failure()
        clone = template.clone(clock=clock)
        assert clone.state == CLOSED
        assert clone.failure_threshold == 2
        assert clone.reset_timeout == 7.0
        snap = clone.snapshot()
        assert snap["state"] == CLOSED
        assert snap["trips"] == 0


class TestHealthMonitorIntegration:
    def make(self, clock: FakeClock) -> HealthMonitor:
        return HealthMonitor(
            failure_threshold=100,  # streak benching out of the way
            heartbeat_timeout=1000.0,
            clock=clock,
            breaker=CircuitBreaker(failure_threshold=3, reset_timeout=50.0),
        )

    def test_breakers_are_minted_per_replica(self):
        monitor = self.make(FakeClock())
        for replica_id in ("a", "b"):
            monitor.register(replica_id)
        assert monitor.breaker("a") is not monitor.breaker("b")
        monitor.deregister("a")
        assert monitor.breaker("a") is None

    def test_open_breaker_removes_replica_from_routing(self):
        clock = FakeClock()
        monitor = self.make(clock)
        monitor.register("r0")
        monitor.register("r1")
        for _ in range(3):
            monitor.record_failure("r0")
        assert monitor.routable_ids() == ["r1"]
        assert not monitor.is_routable("r0")
        # After the reset timeout the breaker half-opens: probe traffic flows.
        clock.advance(60.0)
        monitor.heartbeat("r0")
        monitor.heartbeat("r1")
        assert "r0" in monitor.routable_ids()

    def test_flapping_replica_attempts_are_bounded(self):
        """The pin: a replica that heartbeats alive but fails every request
        receives at most failure_threshold attempts per reset window."""
        clock = FakeClock()
        monitor = self.make(clock)
        monitor.register("flappy")
        attempts = 0
        for _ in range(50):  # 50 requests' worth of routing decisions
            monitor.heartbeat("flappy")  # flapping: always reports alive
            if monitor.is_routable("flappy"):
                attempts += 1
                monitor.record_failure("flappy")
        assert attempts == 3, "breaker caps attempts at its failure threshold"
        clock.advance(60.0)
        assert monitor.is_routable("flappy"), "one probe per reset window"
        monitor.record_failure("flappy")
        assert not monitor.is_routable("flappy")

    def test_success_after_probe_restores_traffic(self):
        clock = FakeClock()
        monitor = self.make(clock)
        monitor.register("r0")
        for _ in range(3):
            monitor.record_failure("r0")
        clock.advance(60.0)
        assert monitor.is_routable("r0")
        monitor.record_success("r0")
        assert monitor.breaker("r0").state == CLOSED

    def test_revive_resets_the_breaker(self):
        monitor = self.make(FakeClock())
        monitor.register("r0")
        for _ in range(3):
            monitor.record_failure("r0")
        assert not monitor.is_routable("r0")
        monitor.revive("r0")
        assert monitor.is_routable("r0")

    def test_restart_heartbeat_resets_the_breaker(self):
        clock = FakeClock()
        monitor = self.make(clock)
        monitor.register("r0")
        for _ in range(3):
            monitor.record_failure("r0")
        monitor.mark_stopped("r0")
        monitor.heartbeat("r0", alive=True)  # the process came back
        assert monitor.is_routable("r0")

    def test_snapshot_carries_breaker_state(self):
        monitor = self.make(FakeClock())
        monitor.register("r0")
        for _ in range(3):
            monitor.record_failure("r0")
        entry = monitor.snapshot()["r0"]
        assert entry["breaker"]["state"] == OPEN
        assert entry["breaker"]["trips"] == 1

    def test_monitor_without_breaker_template_is_unchanged(self):
        monitor = HealthMonitor(clock=FakeClock())
        monitor.register("r0")
        assert monitor.breaker("r0") is None
        assert "breaker" not in monitor.snapshot()["r0"]


class TestProbeSlotEconomy:
    """Candidacy listing must not spend the half-open probe; dispatch does."""

    def test_would_allow_is_read_only(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        breaker.record_failure()
        assert not breaker.would_allow()
        clock.advance(10.0)
        # Any number of read-only checks report admissible without committing
        # the open -> half-open transition.
        for _ in range(5):
            assert breaker.would_allow()
        # Raw state, not .state/.snapshot(): those run _advance() and would
        # themselves commit the transition this test proves uncommitted.
        assert breaker._state == OPEN
        assert breaker.allow()  # dispatch commits
        assert breaker._state == HALF_OPEN

    def test_would_allow_in_closed_and_half_open(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        assert breaker.would_allow()  # closed
        breaker.record_failure()
        clock.advance(10.0)
        breaker.allow()  # commit to half-open
        assert breaker.would_allow()  # half-open admits the probe

    def make_monitor(self, clock: FakeClock) -> HealthMonitor:
        return HealthMonitor(
            failure_threshold=100,
            heartbeat_timeout=1000.0,
            clock=clock,
            breaker=CircuitBreaker(failure_threshold=1, reset_timeout=10.0),
        )

    def test_listing_does_not_burn_the_probe(self):
        clock = FakeClock()
        monitor = self.make_monitor(clock)
        monitor.register("r0")
        monitor.record_failure("r0")  # breaker opens
        clock.advance(10.0)
        monitor.heartbeat("r0")
        # The bug this pins: routable_ids()/is_routable() used to call
        # allow(), committing half-open on a replica placement might never
        # dispatch to — a stale failure then re-tripped the breaker and
        # pushed recovery out another reset_timeout window.
        for _ in range(5):
            assert "r0" in monitor.routable_ids()
            assert monitor.is_routable("r0")
        assert monitor.breaker("r0")._state == OPEN  # raw: .state would commit
        # Dispatch commits the probe exactly once.
        assert monitor.try_dispatch("r0")
        assert monitor.breaker("r0")._state == HALF_OPEN

    def test_try_dispatch_without_breaker_always_admits(self):
        monitor = HealthMonitor(clock=FakeClock())
        monitor.register("r0")
        assert monitor.try_dispatch("r0")
        assert monitor.try_dispatch("ghost")  # deregistered mid-dispatch: no breaker

"""Chaos acceptance pin: composed faults, concurrent clients, zero lost.

One fault plan composes a replica crash, a slow shard, and unannounced
gateway disconnects while an 8-client hammer pushes obfuscated extraction
through ``RemoteClient(resume=True)`` → ``GatewayServer`` → ``ClusterRouter``
over loopback.  The pins:

* **zero lost requests** — every submitted future resolves as a result or a
  typed error, and every client's ledger balances
  (``submitted == succeeded + failed``, nothing pending);
* **byte-identity** — every successful output is bit-for-bit identical to
  the fault-free in-process path (``padding="full"`` makes replica batches
  reproducible regardless of how failover and resubmission re-coalesce them,
  and resubmitted requests reuse their already-augmented bytes);
* **determinism** — the invariants hold for each of the parametrized seeds.

The ``chaos``-marked soak at the bottom randomizes fault timing from a
``CHAOS_SEED`` environment variable; it is excluded from the default run
(``-m "not chaos"``) and exercised by the CI chaos job.
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro.cloud import CloudSession
from repro.core import Amalgam, AmalgamConfig
from repro.data import make_mnist
from repro.models import LeNet
from repro.serve import (
    AdmissionScheduler,
    Batcher,
    CircuitBreaker,
    ClusterRouter,
    ConnectionClosed,
    ConsistentHashPolicy,
    ExtractionProxy,
    FaultInjector,
    FaultPlan,
    FaultRule,
    GatewayError,
    GatewayServer,
    HealthMonitor,
    RemoteClient,
    ReplicaWorker,
    RetryPolicy,
    ServerStopped,
)
from repro.serve.faults import SITE_CLIENT_SEND, SITE_GATEWAY_SEND

NUM_CLIENTS = 8


def fast_retry(max_attempts: int = 8) -> RetryPolicy:
    async def instant(_delay: float) -> None:
        return None

    return RetryPolicy(
        max_attempts=max_attempts, base_delay=0.001, max_delay=0.01, async_sleep=instant
    )


@pytest.fixture(scope="module")
def obfuscated_job():
    data = make_mnist(train_count=16, val_count=6, seed=29)
    config = AmalgamConfig(augmentation_amount=0.5, num_subnetworks=2, seed=29)
    job = Amalgam(config).prepare_image_job(
        LeNet(10, 1, 28, rng=np.random.default_rng(29)), data
    )
    return job, data


def make_faulty_cluster(faults: FaultInjector) -> ClusterRouter:
    return ClusterRouter(
        [
            ReplicaWorker(
                f"replica-{index}",
                batcher=Batcher(max_batch_size=8, max_wait=0.002, padding="full"),
                faults=faults,
            )
            for index in range(3)
        ],
        placement=ConsistentHashPolicy(replication_factor=2, vnodes=32),
        admission=AdmissionScheduler(),
        health=HealthMonitor(
            breaker=CircuitBreaker(failure_threshold=3, reset_timeout=30.0)
        ),
        retry=RetryPolicy(max_attempts=4, base_delay=0.001, max_delay=0.01, jitter=False),
        max_retries=3,
    )


def composed_plan(seed: int) -> FaultPlan:
    """Replica crash + slow shard + mid-stream gateway disconnects."""
    return (
        FaultPlan(seed=seed)
        .crash_replica("replica-0", on_request=4)
        .slow_replica("replica-1", latency=0.002, times=-1)
        .drop_connection(after_frames=6, times=2)
    )


def hammer(gateway, job, raw, *, client_faults=None):
    """NUM_CLIENTS concurrent resuming clients, each extracting ``raw``."""
    results: dict = {}
    errors: dict = {}

    def worker(index: int) -> None:
        try:
            with RemoteClient(
                *gateway.address,
                resume=True,
                retry=fast_retry(),
                faults=client_faults,
            ) as client:
                proxy = ExtractionProxy(job.secrets)
                futures = [proxy.submit(client, "lenet-aug", sample) for sample in raw]
                outputs = [future.result(timeout=120) for future in futures]
                results[index] = (outputs, client.ledger())
        except Exception as error:  # noqa: BLE001 - surfaced in the assert
            errors[index] = error

    threads = [
        threading.Thread(target=worker, args=(index,), daemon=True)
        for index in range(NUM_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=180)
    assert not any(thread.is_alive() for thread in threads), "a chaos client hung"
    return results, errors


class TestComposedChaos:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_zero_lost_and_byte_identical_across_seeds(self, obfuscated_job, seed):
        job, data = obfuscated_job
        raw = [np.asarray(sample) for sample in data.validation.samples[:6]]

        # Fault-free in-process reference: per-sample predicts so the
        # noise-draw order matches submit's one-augment-per-request pattern.
        reference_router = make_faulty_cluster(FaultInjector())
        CloudSession.publish(job, reference_router, "lenet-aug")
        reference_proxy = ExtractionProxy(job.secrets)
        expected = [
            reference_proxy.predict(reference_router, "lenet-aug", sample)
            for sample in raw
        ]
        reference_router.stop()

        faults = FaultInjector(composed_plan(seed))
        router = make_faulty_cluster(faults)
        CloudSession.publish(job, router, "lenet-aug")
        with router:
            with GatewayServer(router, faults=faults) as gateway:
                results, errors = hammer(gateway, job, raw)

        assert not errors, f"chaos clients raised: {errors!r}"
        assert set(results) == set(range(NUM_CLIENTS))
        for outputs, ledger in results.values():
            assert ledger["submitted"] == len(raw)
            assert ledger["succeeded"] == len(raw), f"lost requests: {ledger}"
            assert ledger["failed"] == 0
            assert ledger["pending"] == 0
            for output, reference in zip(outputs, expected):
                assert output.dtype == reference.dtype
                assert output.tobytes() == reference.tobytes()

        fired = faults.fired_counts()
        assert fired.get("replica.request:crash") == 1, fired
        assert fired.get("gateway.send:disconnect") == 2, fired
        assert fired.get("replica.request:delay", 0) >= 1, fired
        # The disconnected clients actually exercised resume.
        reconnects = sum(ledger["reconnects"] for _, ledger in results.values())
        assert reconnects >= 1


@pytest.mark.chaos
class TestRandomizedSoak:
    """Opt-in randomized soak (CI chaos job): heavier, probabilistic faults.

    Requests may fail — but only with typed errors, and every ledger must
    balance.  ``CHAOS_SEED`` picks the fault timing."""

    def test_soak_never_loses_a_request(self, obfuscated_job):
        seed = int(os.environ.get("CHAOS_SEED", "0"))
        job, data = obfuscated_job
        raw = [np.asarray(sample) for sample in data.validation.samples[:6]] * 2

        plan = (
            composed_plan(seed)
            .add(
                FaultRule(
                    SITE_GATEWAY_SEND,
                    "delay",
                    times=-1,
                    probability=0.2,
                    delay=0.001,
                )
            )
            .add(
                FaultRule(
                    SITE_CLIENT_SEND, "reset", after=3, times=4, probability=0.1
                )
            )
        )
        faults = FaultInjector(plan)
        router = make_faulty_cluster(faults)
        CloudSession.publish(job, router, "lenet-aug")

        results: dict = {}
        errors: dict = {}

        def worker(index: int) -> None:
            outcomes = {"ok": 0, "typed": 0}
            try:
                with RemoteClient(
                    *gateway.address, resume=True, retry=fast_retry(), faults=faults
                ) as client:
                    proxy = ExtractionProxy(job.secrets)
                    futures = [
                        proxy.submit(client, "lenet-aug", sample) for sample in raw
                    ]
                    for future in futures:
                        try:
                            output = future.result(timeout=120)
                        except (ConnectionClosed, GatewayError, ServerStopped):
                            outcomes["typed"] += 1
                        else:
                            assert output.ndim >= 1
                            outcomes["ok"] += 1
                    results[index] = (outcomes, client.ledger())
            except (ConnectionClosed, GatewayError, ServerStopped) as error:
                results[index] = ({"aborted": repr(error)}, None)
            except Exception as error:  # noqa: BLE001 - surfaced in the assert
                errors[index] = error

        with router:
            with GatewayServer(router, faults=faults) as gateway:
                threads = [
                    threading.Thread(target=worker, args=(index,), daemon=True)
                    for index in range(NUM_CLIENTS)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=300)
                assert not any(thread.is_alive() for thread in threads), "soak hung"

        assert not errors, f"untyped failures escaped: {errors!r}"
        for outcomes, ledger in results.values():
            if ledger is None:  # the client aborted with a typed error
                continue
            assert outcomes["ok"] + outcomes["typed"] == len(raw)
            assert ledger["submitted"] == ledger["succeeded"] + ledger["failed"]
            assert ledger["pending"] == 0

"""Reconnect-with-resume: the client survives unannounced connection loss.

The pins from the issue:

* kill the connection mid-run → the client re-HELLOs with the same tenant,
  resubmits every request that never got a response frame, and every future
  resolves as a result or a typed error — the ledger balances;
* a graceful GOODBYE is *not* resumed (the server answered everything it
  accepted; what is left raced past the drain edge);
* when the reconnect budget is exhausted nothing hangs — pending futures fail
  with a typed ``ConnectionClosed``;
* ``ExtractionProxy`` extraction over a faulty loopback matches the
  in-process path bit for bit (augmentation happens client-side *before*
  submission, so a resubmitted request reuses the same augmented bytes).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.cloud import CloudSession
from repro.core import Amalgam, AmalgamConfig
from repro.data import make_mnist
from repro.models import LeNet
from repro.serve import (
    AdmissionScheduler,
    Batcher,
    ClusterRouter,
    ConnectionClosed,
    ExtractionProxy,
    FaultInjector,
    FaultPlan,
    GatewayServer,
    RemoteClient,
    ReplicaWorker,
    RetryPolicy,
    ServerStopped,
)

from ..gateway.conftest import EchoBackend


def fast_retry(max_attempts: int = 6) -> RetryPolicy:
    async def instant(_delay: float) -> None:
        return None

    return RetryPolicy(
        max_attempts=max_attempts, base_delay=0.001, max_delay=0.01, async_sleep=instant
    )


@pytest.fixture
def samples():
    return [
        np.random.default_rng(i).standard_normal((4,)).astype(np.float32) for i in range(12)
    ]


def wait_until(predicate, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition not reached in time")


class TestResumeAfterDisconnect:
    def test_mid_run_disconnect_is_transparent(self, samples):
        backend = EchoBackend()
        faults = FaultInjector(FaultPlan().drop_connection(after_frames=5, times=1))
        with GatewayServer(backend, faults=faults) as gateway:
            with RemoteClient(
                *gateway.address, resume=True, retry=fast_retry()
            ) as client:
                outputs = [client.predict("m", sample) for sample in samples]
                ledger = client.ledger()
        for sample, output in zip(samples, outputs):
            np.testing.assert_array_equal(output, sample * 2.0)
        assert ledger["submitted"] == len(samples)
        assert ledger["succeeded"] == len(samples)
        assert ledger["failed"] == 0
        assert ledger["pending"] == 0
        assert ledger["reconnects"] == 1
        assert ledger["resubmitted"] >= 1
        assert faults.fired_counts() == {"gateway.send:disconnect": 1}

    def test_concurrent_inflight_requests_all_resolve(self, samples):
        backend = EchoBackend(delay=0.005)  # keep several requests in flight
        faults = FaultInjector(FaultPlan().drop_connection(after_frames=4, times=1))
        with GatewayServer(backend, faults=faults) as gateway:
            with RemoteClient(
                *gateway.address, resume=True, retry=fast_retry(), window=8
            ) as client:
                futures = client.submit_many("m", samples)
                outputs = [future.result(timeout=30) for future in futures]
                ledger = client.ledger()
        for sample, output in zip(samples, outputs):
            np.testing.assert_array_equal(output, sample * 2.0)
        assert ledger["submitted"] == ledger["succeeded"] + ledger["failed"]
        assert ledger["failed"] == 0
        assert ledger["reconnects"] >= 1

    def test_without_resume_disconnect_fails_typed(self, samples):
        backend = EchoBackend()
        faults = FaultInjector(FaultPlan().drop_connection(after_frames=2, times=1))
        with GatewayServer(backend, faults=faults) as gateway:
            with RemoteClient(*gateway.address) as client:
                # Frame 2 (the first response) aborts the connection, so some
                # predict in the run fails with the typed close error.
                with pytest.raises(ConnectionClosed):
                    for sample in samples:
                        client.predict("m", sample)

    def test_resume_after_socket_reset_on_send(self, samples):
        backend = EchoBackend()
        client_faults = FaultInjector(FaultPlan().reset_socket(on_send=3, times=1))
        with GatewayServer(backend) as gateway:
            with RemoteClient(
                *gateway.address, resume=True, retry=fast_retry(), faults=client_faults
            ) as client:
                outputs = [client.predict("m", sample) for sample in samples]
                ledger = client.ledger()
        for sample, output in zip(samples, outputs):
            np.testing.assert_array_equal(output, sample * 2.0)
        assert ledger["reconnects"] == 1
        assert ledger["resubmitted"] >= 1
        assert ledger["submitted"] == ledger["succeeded"] == len(samples)


class TestResumeBoundaries:
    def test_goodbye_is_never_resumed(self, samples):
        backend = EchoBackend()
        gateway = GatewayServer(backend)
        gateway.start()
        client = RemoteClient(*gateway.address, resume=True, retry=fast_retry())
        try:
            client.predict("m", samples[0])
            gateway.stop()  # graceful: GOODBYE, not an unannounced death
            connection = client._pool[0]
            wait_until(lambda: connection.closed)
            with pytest.raises(ServerStopped):
                client.predict("m", samples[1])
            assert client.ledger()["reconnects"] == 0
        finally:
            client.close()

    def test_exhausted_reconnect_budget_fails_typed(self, samples):
        backend = EchoBackend()
        # First connect succeeds; every reconnect attempt is refused.
        client_faults = FaultInjector(
            FaultPlan()
            .reset_socket(on_send=2, times=1)
            .refuse_connect(after=2, times=-1)
        )
        with GatewayServer(backend) as gateway:
            with RemoteClient(
                *gateway.address,
                resume=True,
                retry=fast_retry(max_attempts=2),
                faults=client_faults,
            ) as client:
                np.testing.assert_array_equal(
                    client.predict("m", samples[0]), samples[0] * 2.0
                )
                with pytest.raises(ConnectionClosed, match="reconnect failed"):
                    client.predict("m", samples[1])
                ledger = client.ledger()
        assert ledger["submitted"] == 2
        assert ledger["succeeded"] == 1
        assert ledger["failed"] == 1
        assert ledger["pending"] == 0

    def test_reconnect_retries_through_refused_connects(self, samples):
        backend = EchoBackend()
        client_faults = FaultInjector(
            FaultPlan()
            .reset_socket(on_send=2, times=1)
            .refuse_connect(after=2, times=2)  # two refusals, then success
        )
        with GatewayServer(backend) as gateway:
            with RemoteClient(
                *gateway.address,
                resume=True,
                retry=fast_retry(max_attempts=6),
                faults=client_faults,
            ) as client:
                outputs = [client.predict("m", sample) for sample in samples[:4]]
                ledger = client.ledger()
        for sample, output in zip(samples, outputs):
            np.testing.assert_array_equal(output, sample * 2.0)
        assert ledger["reconnects"] == 1
        assert ledger["failed"] == 0


class TestReaderGrace:
    def test_validation(self):
        from repro.serve import AsyncRemoteClient

        with pytest.raises(ValueError, match="reader_grace"):
            AsyncRemoteClient("127.0.0.1", 1, reader_grace=0.0)

    def test_send_failure_surfaces_the_real_cause(self, samples):
        """Satellite pin: the typed close error keeps the send failure as its
        ``__cause__`` instead of swallowing it (`from None` previously)."""
        backend = EchoBackend()
        client_faults = FaultInjector(FaultPlan().reset_socket(on_send=2, times=1))
        with GatewayServer(backend) as gateway:
            with RemoteClient(
                *gateway.address, faults=client_faults, reader_grace=2.0
            ) as client:
                client.predict("m", samples[0])
                with pytest.raises(ConnectionClosed) as excinfo:
                    client.predict("m", samples[1])
        assert isinstance(excinfo.value.__cause__, ConnectionResetError)


class TestProxyOverFaultyLoopback:
    @pytest.fixture(scope="class")
    def obfuscated_job(self):
        data = make_mnist(train_count=16, val_count=6, seed=23)
        config = AmalgamConfig(augmentation_amount=0.5, num_subnetworks=2, seed=23)
        job = Amalgam(config).prepare_image_job(
            LeNet(10, 1, 28, rng=np.random.default_rng(23)), data
        )
        return job, data

    def test_extraction_bit_identical_despite_disconnects(self, obfuscated_job):
        """The reconnect pin: obfuscated extraction over a loopback that drops
        the connection mid-run matches the in-process path bit for bit."""
        job, data = obfuscated_job
        raw = [np.asarray(sample) for sample in data.validation.samples[:6]]
        router = ClusterRouter(
            [
                ReplicaWorker(
                    f"replica-{index}",
                    batcher=Batcher(max_batch_size=8, max_wait=0.002, padding="full"),
                )
                for index in range(2)
            ],
            admission=AdmissionScheduler(),
        )
        CloudSession.publish(job, router, "lenet-aug")
        reference_proxy = ExtractionProxy(job.secrets)
        expected = [reference_proxy.predict(router, "lenet-aug", sample) for sample in raw]

        gateway_faults = FaultInjector(
            FaultPlan().drop_connection(after_frames=4, times=1)
        )
        with router:
            with GatewayServer(router, faults=gateway_faults) as gateway:
                with RemoteClient(
                    *gateway.address, resume=True, retry=fast_retry()
                ) as remote:
                    proxy = ExtractionProxy(job.secrets)
                    futures = [proxy.submit(remote, "lenet-aug", sample) for sample in raw]
                    outputs = [future.result(timeout=60) for future in futures]
                    ledger = remote.ledger()

        assert gateway_faults.fired_counts().get("gateway.send:disconnect") == 1
        assert ledger["failed"] == 0
        assert ledger["submitted"] == ledger["succeeded"] == len(raw)
        for output, reference in zip(outputs, expected):
            assert output.dtype == reference.dtype
            assert output.tobytes() == reference.tobytes()

"""Unit tests for RetryPolicy / BackoffSession (decorrelated jitter backoff)."""

from __future__ import annotations

import random

import pytest

from repro.serve import RetryPolicy


class TestValidation:
    def test_rejects_bad_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_rejects_bad_delays(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=2.0, max_delay=1.0)

    def test_rejects_shrinking_multiplier(self):
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestBudget:
    def test_should_retry_counts_failures(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(0)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)
        assert not policy.should_retry(7)


class TestSchedule:
    def test_plain_exponential_without_jitter(self):
        policy = RetryPolicy(
            base_delay=0.1, max_delay=10.0, multiplier=2.0, jitter=False
        )
        session = policy.session()
        assert [session.next_delay() for _ in range(4)] == pytest.approx(
            [0.1, 0.2, 0.4, 0.8]
        )

    def test_exponential_caps_at_max_delay(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=2.5, multiplier=3.0, jitter=False)
        session = policy.session()
        assert [session.next_delay() for _ in range(3)] == pytest.approx([1.0, 2.5, 2.5])

    def test_jitter_draws_within_decorrelated_bounds(self):
        policy = RetryPolicy(
            base_delay=0.05,
            max_delay=1.0,
            multiplier=3.0,
            rng=random.Random(11),
        )
        session = policy.session()
        previous = None
        for _ in range(50):
            delay = session.next_delay()
            upper = 1.0 if previous is None else min(max(previous * 3.0, 0.05), 1.0)
            assert 0.05 <= delay <= max(upper, 0.05) + 1e-12
            assert delay <= 1.0
            previous = delay

    def test_seeded_jitter_is_reproducible(self):
        def draws(seed: int):
            session = RetryPolicy(rng=random.Random(seed)).session()
            return [session.next_delay() for _ in range(8)]

        assert draws(5) == draws(5)
        assert draws(5) != draws(6)

    def test_sessions_are_independent_sequences(self):
        policy = RetryPolicy(jitter=False, base_delay=0.1, multiplier=2.0)
        first, second = policy.session(), policy.session()
        first.next_delay()
        first.next_delay()
        # A fresh session starts from base_delay regardless of its siblings.
        assert second.next_delay() == pytest.approx(0.1)


class TestInjectableSleep:
    def test_pause_goes_through_the_injected_sleep(self):
        slept = []
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, jitter=False, sleep=slept.append
        )
        session = policy.session()
        session.pause()
        session.pause()
        assert slept == pytest.approx([0.1, 0.2])
        assert session.total_delay == pytest.approx(0.3)
        assert session.attempts == 2

    def test_zero_delay_never_calls_sleep(self):
        slept = []
        policy = RetryPolicy(base_delay=0.0, max_delay=0.0, jitter=False, sleep=slept.append)
        policy.session().pause()
        assert slept == []

    def test_async_pause_uses_injected_async_sleep(self):
        import asyncio

        waited = []

        async def fake_sleep(delay: float) -> None:
            waited.append(delay)

        policy = RetryPolicy(
            base_delay=0.2, multiplier=2.0, jitter=False, async_sleep=fake_sleep
        )

        async def run():
            session = policy.session()
            await session.apause()
            await session.apause()

        asyncio.run(run())
        assert waited == pytest.approx([0.2, 0.4])

"""Router-level resilience: retry pacing, failover stats, breaker-bounded
attempts against a flapping replica — deterministic via injected sleep/clock."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import model_factory
from repro.serve import (
    Batcher,
    CircuitBreaker,
    ClusterRouter,
    ConsistentHashPolicy,
    FailoverExhausted,
    FaultInjector,
    FaultPlan,
    HealthMonitor,
    ReplicaWorker,
    RetryPolicy,
)

from ..conftest import lenet_bundle


def make_replica(replica_id: str, faults=None) -> ReplicaWorker:
    return ReplicaWorker(
        replica_id,
        batcher=Batcher(max_batch_size=8, max_wait=0.005, padding="full"),
        num_workers=1,
        faults=faults,
    )


def make_router(replica_ids=("r0", "r1", "r2"), faults=None, **kwargs):
    kwargs.setdefault("placement", ConsistentHashPolicy(replication_factor=2, vnodes=32))
    replicas = [make_replica(replica_id, faults=faults) for replica_id in replica_ids]
    return ClusterRouter(replicas, **kwargs)


def register_lenet(router: ClusterRouter) -> None:
    router.register("lenet", lenet_bundle(), model_factory("lenet", in_channels=1, seed=3))


@pytest.fixture
def images() -> np.ndarray:
    return np.random.default_rng(11).standard_normal((4, 1, 28, 28)).astype(np.float32)


class TestRetryPacing:
    def test_sync_failover_paces_through_the_policy_sleep(self, images):
        slept = []
        policy = RetryPolicy(base_delay=0.01, multiplier=2.0, jitter=False, sleep=slept.append)
        faults = FaultInjector(FaultPlan().crash_replica("r0").crash_replica("r1"))
        router = make_router(retry=policy, faults=faults, max_retries=3)
        register_lenet(router)
        outputs = router.predict_batch("lenet", list(images))
        assert len(outputs) == len(images)
        # Both crash-capable replicas may or may not be hit first depending on
        # placement, but every retryable failure paid one paced delay.
        stats = router.failover_stats()
        failures = sum(entry["failures"] for entry in stats["per_replica"].values())
        assert failures >= 1
        assert len(slept) == failures
        assert stats["backoff_seconds"] == pytest.approx(sum(slept))
        router.stop()

    def test_async_failover_paces_between_redispatches(self, images):
        slept = []
        policy = RetryPolicy(base_delay=0.01, multiplier=2.0, jitter=False, sleep=slept.append)
        faults = FaultInjector(FaultPlan().crash_replica("r0"))
        router = make_router(retry=policy, faults=faults, max_retries=3)
        register_lenet(router)
        with router:
            futures = [router.submit("lenet", image) for image in images]
            results = [future.result(timeout=30) for future in futures]
        assert len(results) == len(images)
        stats = router.failover_stats()
        failures = sum(entry["failures"] for entry in stats["per_replica"].values())
        if failures:  # placement may have routed everything around r0
            assert slept, "paced delays accompany failovers"
        assert stats["backoff_seconds"] == pytest.approx(sum(slept))

    def test_no_policy_means_immediate_retry(self, images):
        faults = FaultInjector(FaultPlan().crash_replica("r0"))
        router = make_router(faults=faults)
        register_lenet(router)
        outputs = router.predict_batch("lenet", list(images))
        assert len(outputs) == len(images)
        assert router.failover_stats()["backoff_seconds"] == 0.0
        assert router.failover_stats()["retry_policy"] is None
        router.stop()


class TestFailoverStats:
    def test_stats_structure_and_counters(self, images):
        faults = FaultInjector(FaultPlan().crash_replica("r0", on_request=1))
        router = make_router(faults=faults)
        register_lenet(router)
        router.predict_batch("lenet", list(images))
        section = router.stats()["failover"]
        attempts = sum(entry["attempts"] for entry in section["per_replica"].values())
        failures = sum(entry["failures"] for entry in section["per_replica"].values())
        assert attempts >= 1
        assert attempts == failures + 1, "one batch: N failed dispatches + 1 success"
        router.stop()

    def test_breaker_state_rides_in_failover_stats(self, images):
        health = HealthMonitor(
            failure_threshold=100,
            heartbeat_timeout=1000.0,
            breaker=CircuitBreaker(failure_threshold=1, reset_timeout=1000.0),
        )
        faults = FaultInjector(FaultPlan().crash_replica("r0", on_request=1))
        router = make_router(health=health, faults=faults, max_retries=3)
        register_lenet(router)
        router.predict_batch("lenet", list(images))
        section = router.stats()["failover"]
        states = {
            replica_id: entry.get("breaker_state")
            for replica_id, entry in section["per_replica"].items()
        }
        assert all(state is not None for state in states.values())
        crashed = [entry for entry in section["per_replica"].values() if entry["failures"]]
        assert crashed and all(entry["breaker_trips"] >= 1 for entry in crashed)
        router.stop()

    def test_middleware_context_sees_failover_attempts(self, images):
        from repro.serve import ServeMiddleware

        seen = []

        class Spy(ServeMiddleware):
            def on_response(self, context):
                seen.append(context.metadata.get("failover_attempts"))

        faults = FaultInjector(FaultPlan().crash_replica("r0", on_request=1))
        router = make_router(faults=faults, middleware=[Spy()], max_retries=3)
        register_lenet(router)
        with router:
            futures = [router.submit("lenet", image) for image in images]
            for future in futures:
                future.result(timeout=30)
        assert len(seen) == len(images)
        assert all(isinstance(count, int) and count >= 1 for count in seen)
        assert any(count >= 2 for count in seen) or not any(
            entry["failures"]
            for entry in router.failover_stats()["per_replica"].values()
        )


class TestBreakerBoundsAttempts:
    def test_flapping_replica_attempts_bounded_by_breaker(self, images):
        """The ISSUE pin at router level: a flapping replica (alive heartbeat,
        every request fails) receives at most breaker-threshold attempts even
        under sustained traffic, counter-asserted from failover stats."""
        health = HealthMonitor(
            failure_threshold=10_000,  # streak benching disabled: breaker only
            heartbeat_timeout=1000.0,
            breaker=CircuitBreaker(failure_threshold=3, reset_timeout=1000.0),
        )
        faults = FaultInjector(
            FaultPlan().fail_replica("r0", after=1, times=-1)
        )
        router = make_router(health=health, faults=faults, max_retries=3)
        register_lenet(router)
        for image in images:
            router.predict("lenet", image)
        for image in images:
            router.predict("lenet", image)
        stats = router.failover_stats()["per_replica"]
        flappy = stats.get("r0", {"attempts": 0})
        assert flappy["attempts"] <= 3, (
            f"breaker must cap attempts against the flapping replica, saw {flappy}"
        )
        assert router.health.breaker("r0").trips >= 1 or flappy["attempts"] == 0
        router.stop()

    def test_exhausted_failover_is_typed(self, images):
        faults = FaultInjector(FaultPlan().fail_replica(times=-1))  # every replica
        router = make_router(faults=faults, max_retries=2)
        register_lenet(router)
        with pytest.raises(FailoverExhausted):
            router.predict("lenet", images[0])
        router.stop()

"""Concurrency hammer and sync/concurrent parity for the middleware chain."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.cloud import pack_model
from repro.models import model_factory
from repro.serve import (
    Batcher,
    InferenceServer,
    ModelRegistry,
    RateLimitExceeded,
    RateLimiter,
    ResponseCache,
    Telemetry,
)

from .conftest import make_lenet


def fresh_registry() -> ModelRegistry:
    registry = ModelRegistry(capacity=2)
    registry.register(
        "lenet",
        pack_model(make_lenet(3), task="classification"),
        model_factory("lenet", in_channels=1, seed=3),
    )
    return registry


def chained_server(
    limiter_rate: float = 1e9, num_workers: int = 4
) -> tuple[InferenceServer, ResponseCache, Telemetry, RateLimiter]:
    """Full-padding server behind Telemetry -> ResponseCache -> RateLimiter.

    Telemetry sits outermost so it observes every request, including cache
    hits (a hit short-circuits the descent before reaching inner hooks).
    """
    telemetry = Telemetry()
    cache = ResponseCache(capacity=4096)
    limiter = RateLimiter(rate=limiter_rate, capacity=limiter_rate)
    server = InferenceServer(
        fresh_registry(),
        Batcher(max_batch_size=8, max_wait=0.005, padding="full"),
        num_workers=num_workers,
        middleware=[telemetry, cache, limiter],
    )
    return server, cache, telemetry, limiter


class TestConcurrencyHammer:
    def test_eight_threads_byte_identical_with_exact_stats(self, images):
        """8 client threads through cache+telemetry+limiter == sequential, bitwise.

        With ``padding="full"`` every executed batch shares one shape, so
        results cannot depend on how the scheduler coalesced requests — and
        every stats counter must balance: nothing lost, nothing duplicated.
        """
        reference_server = InferenceServer(
            fresh_registry(), Batcher(max_batch_size=8, padding="full")
        )
        sequential = [reference_server.predict("lenet", sample) for sample in images]

        server, cache, telemetry, limiter = chained_server()
        threads_count, rounds = 8, 3
        total = threads_count * rounds
        results: dict[int, list[np.ndarray]] = {}
        errors: list[Exception] = []
        lock = threading.Lock()

        def client(thread_index: int) -> None:
            try:
                for round_index in range(rounds):
                    sample_index = (thread_index * rounds + round_index) % len(images)
                    future = server.submit("lenet", images[sample_index])
                    output = future.result(timeout=30)
                    with lock:
                        results.setdefault(sample_index, []).append(output)
            except Exception as error:  # noqa: BLE001 - surfaced to the main thread
                with lock:
                    errors.append(error)

        with server:
            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(threads_count)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert not errors
        # byte-identical vs the sequential reference, for every occurrence
        assert sum(len(outputs) for outputs in results.values()) == total
        for sample_index, outputs in results.items():
            for output in outputs:
                assert np.array_equal(output, sequential[sample_index]), (
                    f"threaded result for sample {sample_index} differs from sequential"
                )

        # stats balance exactly: no lost or duplicated counts anywhere
        cache_stats = cache.stats()
        assert cache_stats["hits"] + cache_stats["misses"] == total
        assert limiter.stats()["admitted"] == cache_stats["misses"]
        assert limiter.stats()["rejected"] == 0
        server_stats = server.stats("lenet")
        assert server_stats["requests"] == cache_stats["misses"]  # executed = misses
        assert server_stats["errors"] == 0
        assert server_stats["stages"]["request.total"]["count"] == total
        assert server_stats["stages"]["request.cache_hit"]["count"] == cache_stats["hits"]


REQUEST_STREAM = [0, 1, 0, 2, 1, 3, 4]  # uniques: 0..4; duplicates: 0, 1


def expected_outcomes(capacity: int = 4) -> list[str]:
    """LRU-cache + token-bucket model of the stream above."""
    seen: set[int] = set()
    tokens = float(capacity)
    outcomes = []
    for index in REQUEST_STREAM:
        if index in seen:
            outcomes.append("hit")  # cache answers before the limiter runs
        elif tokens >= 1.0:
            tokens -= 1.0
            seen.add(index)
            outcomes.append("served")
        else:
            outcomes.append("rejected")
    return outcomes


class TestSyncConcurrentParity:
    """The same serialized request stream must behave identically in both modes."""

    @staticmethod
    def run_stream(server, images, mode: str):
        outcomes: list[object] = []
        for index in REQUEST_STREAM:
            sample = images[index]
            try:
                if mode == "sync":
                    outcomes.append(server.predict("lenet", sample))
                else:
                    # serialized: wait for each future so the request order —
                    # and therefore cache/limiter state — matches sync mode
                    outcomes.append(server.submit("lenet", sample).result(timeout=30))
            except RateLimitExceeded as error:
                outcomes.append(error)
        return outcomes

    def test_identical_observable_semantics(self, images):
        frozen_clock = lambda: 0.0  # noqa: E731 - no refill during the stream
        servers = {}
        components = {}
        for mode in ("sync", "concurrent"):
            telemetry = Telemetry()
            cache = ResponseCache(capacity=64)
            limiter = RateLimiter(rate=1.0, capacity=4, clock=frozen_clock)
            servers[mode] = InferenceServer(
                fresh_registry(),
                Batcher(max_batch_size=8, max_wait=0.005, padding="full"),
                middleware=[telemetry, cache, limiter],
            )
            components[mode] = (cache, limiter)

        sync_outcomes = self.run_stream(servers["sync"], images, "sync")
        with servers["concurrent"]:
            concurrent_outcomes = self.run_stream(servers["concurrent"], images, "concurrent")

        model = expected_outcomes(capacity=4)
        assert "rejected" in model and "hit" in model  # the stream exercises all paths
        for expected, sync_out, conc_out in zip(model, sync_outcomes, concurrent_outcomes):
            if expected == "rejected":
                assert isinstance(sync_out, RateLimitExceeded)
                assert isinstance(conc_out, RateLimitExceeded)
            else:
                assert isinstance(sync_out, np.ndarray)
                assert np.array_equal(sync_out, conc_out), "modes disagree bitwise"

        sync_cache, sync_limiter = components["sync"]
        conc_cache, conc_limiter = components["concurrent"]
        assert sync_cache.stats() == conc_cache.stats()
        assert sync_limiter.stats() == conc_limiter.stats()
        sync_stats = servers["sync"].stats("lenet")
        conc_stats = servers["concurrent"].stats("lenet")
        for key in ("requests", "batches", "errors", "mean_batch_size"):
            assert sync_stats[key] == conc_stats[key], key
        assert (
            sync_stats["stages"]["request.total"]["count"]
            == conc_stats["stages"]["request.total"]["count"]
            == len(REQUEST_STREAM)
        )

    def test_sync_mode_raises_what_futures_carry(self, images):
        server, _, _, limiter = chained_server(limiter_rate=1.0)
        limiter.capacity = 1.0
        limiter._clock = lambda: 0.0
        server.predict("lenet", images[0])
        with pytest.raises(RateLimitExceeded):
            server.predict("lenet", images[1])

"""ExtractionProxy: augmentation correctness, output selection, threat boundary."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.cloud import CloudSession
from repro.core import Amalgam, AmalgamConfig, ModelExtractor
from repro.data import make_agnews, make_mnist
from repro.models import LeNet, TextClassifier
from repro.serve import (
    Batcher,
    ExtractionProxy,
    InferenceServer,
    ModelRegistry,
    ObfuscationGuard,
    ObfuscationViolation,
    RateLimitExceeded,
    RateLimiter,
    ResponseCache,
    ServerStopped,
)
from repro.utils.rng import get_rng


def make_image_job():
    data = make_mnist(train_count=24, val_count=8, seed=1)
    config = AmalgamConfig(augmentation_amount=0.5, num_subnetworks=2, seed=13)
    job = Amalgam(config).prepare_image_job(
        LeNet(10, 1, 28, rng=np.random.default_rng(5)), data
    )
    return data, job


@pytest.fixture(scope="module")
def served_image_job():
    data, job = make_image_job()
    registry = ModelRegistry(capacity=2)
    CloudSession.publish(job, registry, "lenet-aug")
    server = InferenceServer(registry, Batcher(max_batch_size=8, max_wait=0.005))
    return data, job, registry, server


class TestImageAugmentation:
    def test_shapes_and_original_values_preserved(self, served_image_job):
        data, job, _, _ = served_image_job
        proxy = ExtractionProxy(job.secrets)
        sample = data.train.samples[0]
        augmented = proxy.augment(sample)
        plan = job.secrets.dataset_plan
        assert augmented.shape == plan.augmented_shape
        flat = augmented.reshape(plan.channels, -1)
        for channel in range(plan.channels):
            assert np.array_equal(
                flat[channel, plan.channel_positions[channel]],
                sample.reshape(plan.channels, -1)[channel],
            )

    def test_noise_is_fresh_per_call(self, served_image_job):
        data, job, _, _ = served_image_job
        proxy = ExtractionProxy(job.secrets)
        sample = data.train.samples[0]
        first = proxy.augment(sample)
        second = proxy.augment(sample)
        plan = job.secrets.dataset_plan
        noise = plan.noise_positions()
        flat_first = first.reshape(plan.channels, -1)
        flat_second = second.reshape(plan.channels, -1)
        assert not np.array_equal(flat_first[0, noise[0]], flat_second[0, noise[0]])

    def test_batch_matches_per_sample_augmentation(self, served_image_job):
        data, job, _, _ = served_image_job
        batch_proxy = ExtractionProxy(job.secrets, rng=get_rng(99))
        batch = batch_proxy.augment_batch(data.train.samples[:3])
        assert batch.shape == (3,) + job.secrets.dataset_plan.augmented_shape
        plan = job.secrets.dataset_plan
        flat = batch.reshape(3, plan.channels, -1)
        originals = data.train.samples[:3].reshape(3, plan.channels, -1)
        for channel in range(plan.channels):
            assert np.array_equal(
                flat[:, channel, plan.channel_positions[channel]], originals[:, channel]
            )

    def test_wrong_shape_rejected(self, served_image_job):
        _, job, _, _ = served_image_job
        proxy = ExtractionProxy(job.secrets)
        with pytest.raises(ValueError):
            proxy.augment(np.zeros((1, 5, 5), np.float32))


class TestTokenAugmentation:
    def test_original_tokens_preserved(self):
        data, _ = make_agnews(train_samples=16, val_samples=8, seed=2)
        config = AmalgamConfig(augmentation_amount=0.5, num_subnetworks=2, seed=7)
        vocab_size = data.info.vocab_size
        model = TextClassifier(
            vocab_size, num_classes=data.info.num_classes, rng=np.random.default_rng(3)
        )
        job = Amalgam(config).prepare_text_job(model, data, vocab_size=vocab_size)
        proxy = ExtractionProxy(job.secrets)
        row = data.train.samples[0]
        augmented = proxy.augment(row)
        plan = job.secrets.dataset_plan
        assert augmented.shape == (plan.augmented_length,)
        assert np.array_equal(augmented[plan.positions[0]], row)
        noise = augmented[plan.noise_positions()[0]]
        assert noise.min() >= 0 and noise.max() < vocab_size


class TestServingRoundTrip:
    def test_predict_selects_the_original_subnetwork(self, served_image_job):
        data, job, _, server = served_image_job
        sample = data.train.samples[0]
        # Two proxies with identical rng state produce the same augmented
        # input, so the served result must equal running the original
        # sub-network directly on that input.
        probe = ExtractionProxy(job.secrets, rng=get_rng(42))
        proxy = ExtractionProxy(job.secrets, rng=get_rng(42))
        augmented = probe.augment(sample)
        expected = job.augmented_model.original_output(nn.Tensor(augmented[None])).data[0]
        got = proxy.predict(server, "lenet-aug", sample)
        np.testing.assert_allclose(got, expected, rtol=1e-5, atol=1e-6)

    def test_predict_batch_selects_original_for_every_sample(self, served_image_job):
        data, job, _, server = served_image_job
        probe = ExtractionProxy(job.secrets, rng=get_rng(7))
        proxy = ExtractionProxy(job.secrets, rng=get_rng(7))
        samples = data.train.samples[:4]
        augmented = probe.augment_batch(samples)
        with nn.no_grad():
            expected = job.augmented_model(nn.Tensor(augmented))
        expected = expected[job.secrets.original_subnetwork_index].data
        batched = proxy.predict_batch(server, "lenet-aug", samples)
        assert len(batched) == 4
        for index, output in enumerate(batched):
            np.testing.assert_allclose(output, expected[index], rtol=1e-5, atol=1e-6)

    def test_concurrent_submit_resolves_selected_output(self, served_image_job):
        data, job, _, server = served_image_job
        proxy = ExtractionProxy(job.secrets)
        with server:
            future = proxy.submit(server, "lenet-aug", data.train.samples[1])
            output = future.result(timeout=30)
        assert output.shape == (10,)

    def test_select_rejects_plain_model_outputs(self, served_image_job):
        _, job, _, _ = served_image_job
        proxy = ExtractionProxy(job.secrets)
        with pytest.raises(ValueError):
            proxy.select(np.zeros(10))


class TestThreatBoundary:
    def test_server_side_artefacts_carry_no_secrets(self, served_image_job):
        _, job, registry, server = served_image_job
        entry = registry.entry("lenet-aug")
        # The registry holds the same augmented artefact CloudSession uploads
        # for training: parameter names/shapes and the task only.  Neither the
        # entry metadata nor the architecture digest may identify the original
        # sub-network or embed the dataset plan object.
        assert "original_subnetwork_index" not in entry.metadata
        assert "plan" not in entry.metadata
        digest = entry.bundle.architecture
        assert set(digest) == {"task", "parameters", "total_parameters"}
        for name in digest["parameters"]:
            assert "original" not in name
        # The served reply is one output row per sub-network, unlabelled.
        sample = np.zeros(job.secrets.dataset_plan.augmented_shape, np.float32)
        stacked = server.predict("lenet-aug", sample)
        assert stacked.shape[0] == job.augmented_model.num_subnetworks

    def test_secrets_never_required_server_side(self, served_image_job):
        """The server can run without ever touching ObfuscationSecrets."""
        data, job, registry, _ = served_image_job
        fresh_server = InferenceServer(registry, Batcher(max_batch_size=4))
        proxy = ExtractionProxy(job.secrets)
        output = proxy.predict(fresh_server, "lenet-aug", data.train.samples[2])
        assert output.shape == (10,)


class TestOfflineExtraction:
    def test_extract_model_matches_model_extractor(self, served_image_job):
        _, job, registry, _ = served_image_job
        proxy = ExtractionProxy(job.secrets)

        def factory():
            return LeNet(10, 1, 28, rng=np.random.default_rng(5))

        report = proxy.extract_model(registry.entry("lenet-aug").bundle, factory)
        reference = ModelExtractor(factory).extract(job.augmented_model)
        assert report.copied_parameters == reference.copied_parameters
        got = report.model.state_dict()
        want = reference.model.state_dict()
        assert set(got) == set(want)
        for name in want:
            assert np.array_equal(got[name], want[name])


class TestProxyMiddleware:
    """The client-side chain: guard, cache and telemetry around round trips."""

    def test_obfuscation_guard_passes_augmented_traffic(self, served_image_job):
        data, job, _, server = served_image_job
        proxy = ExtractionProxy(job.secrets, middleware=[ObfuscationGuard(job.secrets)])
        output = proxy.predict(server, "lenet-aug", data.train.samples[0])
        assert output.shape == (10,)

    def test_obfuscation_guard_blocks_raw_leak(self, served_image_job):
        data, job, _, server = served_image_job

        class SkipAugmentation(ExtractionProxy):
            def augment_batch(self, samples):  # a buggy client: no augmentation
                return np.asarray(samples)

        proxy = SkipAugmentation(job.secrets, middleware=[ObfuscationGuard(job.secrets)])
        with pytest.raises(ObfuscationViolation, match="trust boundary"):
            proxy.predict(server, "lenet-aug", data.train.samples[0])

    def test_client_cache_hits_on_repeated_raw_samples(self, served_image_job):
        """The cache keys on the *raw* sample even though every outbound
        augmentation carries fresh noise — a repeated client request must hit
        without any server round trip."""
        data, job, registry, _ = served_image_job
        cache = ResponseCache(capacity=16)

        class CountingServer:
            def __init__(self, inner):
                self.inner, self.calls = inner, 0

            def predict(self, model_id, sample):
                self.calls += 1
                return self.inner.predict(model_id, sample)

            def predict_batch(self, model_id, samples):
                self.calls += 1
                return self.inner.predict_batch(model_id, samples)

        counting = CountingServer(InferenceServer(registry, Batcher(max_batch_size=8)))
        proxy = ExtractionProxy(job.secrets, middleware=[cache])
        sample = data.train.samples[0]
        first = proxy.predict(counting, "lenet-aug", sample)
        second = proxy.predict(counting, "lenet-aug", sample)
        assert counting.calls == 1  # the second round trip never left the client
        assert np.array_equal(first, second)
        assert cache.stats()["hits"] == 1

    def test_submit_short_circuits_on_client_cache_hit(self, served_image_job):
        data, job, registry, _ = served_image_job
        cache = ResponseCache(capacity=16)
        sample = data.train.samples[3]
        proxy = ExtractionProxy(job.secrets, middleware=[cache])
        server = InferenceServer(registry, Batcher(max_batch_size=4, max_wait=0.005))
        with server:
            warm = proxy.submit(server, "lenet-aug", sample).result(timeout=30)
        # server stopped: a hit must resolve client-side without touching it
        future = proxy.submit(server, "lenet-aug", sample)
        assert np.array_equal(future.result(timeout=5), warm)
        assert cache.stats()["hits"] == 1

    def test_rejection_propagates_through_submit_future(self, served_image_job):
        data, job, registry, _ = served_image_job
        limiter = RateLimiter(rate=1.0, capacity=1, clock=lambda: 0.0)
        proxy = ExtractionProxy(job.secrets, middleware=[limiter])
        server = InferenceServer(registry, Batcher(max_batch_size=4, max_wait=0.005))
        with server:
            ok = proxy.submit(server, "lenet-aug", data.train.samples[0])
            assert ok.result(timeout=30).shape == (10,)
            rejected = proxy.submit(server, "lenet-aug", data.train.samples[1])
            with pytest.raises(RateLimitExceeded):
                rejected.result(timeout=5)

    def test_submit_failure_on_stopped_server_arrives_via_future(self, served_image_job):
        data, job, registry, _ = served_image_job
        limiter = RateLimiter(rate=1e6, capacity=1e6)
        proxy = ExtractionProxy(job.secrets, middleware=[limiter])
        server = InferenceServer(registry, Batcher(max_batch_size=4))
        server.start()
        server.stop()
        # the chain already entered (token taken) when submit fails; the
        # failure must unwind it and arrive via the future, not raise here
        future = proxy.submit(server, "lenet-aug", data.train.samples[0])
        with pytest.raises(RuntimeError, match="stopped"):
            future.result(timeout=5)
        assert limiter.stats()["admitted"] == 1

    def test_submit_on_stopped_server_surfaces_typed_error_via_future(self, served_image_job):
        """Regression: a server stopped mid-flight must fail the proxy future
        with the typed ServerStopped, not a bare RuntimeError the client has
        to string-match (the cluster router also keys failover on the type)."""
        data, job, registry, _ = served_image_job
        proxy = ExtractionProxy(job.secrets, middleware=[RateLimiter(rate=1e6)])
        server = InferenceServer(registry, Batcher(max_batch_size=4))
        server.start()
        server.stop()
        future = proxy.submit(server, "lenet-aug", data.train.samples[0])
        with pytest.raises(ServerStopped):
            future.result(timeout=5)

    def test_submit_without_middleware_raises_synchronously(self, served_image_job):
        data, job, registry, _ = served_image_job
        proxy = ExtractionProxy(job.secrets)  # no chain: pre-middleware behaviour
        server = InferenceServer(registry, Batcher(max_batch_size=4))
        server.start()
        server.stop()
        with pytest.raises(ServerStopped, match="stopped"):
            proxy.submit(server, "lenet-aug", data.train.samples[0])

"""Acceptance scenario: a replica kill fires a latency SLO over the wire.

An 8-client hammer runs against a two-replica cluster behind the gateway,
with a latency SLO evaluated from the gateway's own windowed latency series.
Mid-run the shard primary is killed; every request now pays a deterministic
failover backoff, the fast-burn rule fires, and the alert is **pushed** to
the subscribed client while the hammer is still running.  After recovery
(the corpse is administratively benched) the alert resolves.  Pinned:

* zero lost requests — every predict during the outage succeeds via failover;
* the firing event precedes the resolved event (one monotonic seq stream);
* the client ledger balances before close: submitted == succeeded, 0 failed.

Health auto-benching and the circuit breaker are deliberately configured out
(huge thresholds): the stack normally routes around a corpse within a few
failures, which would make the outage window — and the test — a timing race.
Here the outage lasts exactly until the test benches the replica, so the
fire → resolve cycle is driven by controlled state, not scheduling luck.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.models import model_factory
from repro.serve import (
    AlertManager,
    Batcher,
    CircuitBreaker,
    ClusterRouter,
    ConsistentHashPolicy,
    GatewayServer,
    HealthMonitor,
    RemoteClient,
    ReplicaWorker,
    RetryPolicy,
    SLO,
    StageProfiler,
    WindowedSeriesStore,
)
from repro.serve.observability.slo import BurnRateRule, LatencyObjective

from ..conftest import lenet_bundle

TARGET_MS = 150.0
BACKOFF_S = 0.4  # deterministic failover pause: every outage request > target


def make_stack():
    health = HealthMonitor(
        failure_threshold=10_000,
        heartbeat_timeout=1_000.0,
        breaker=CircuitBreaker(failure_threshold=10_000, reset_timeout=1_000.0),
    )
    router = ClusterRouter(
        [
            ReplicaWorker(
                f"r{index}",
                batcher=Batcher(max_batch_size=8, max_wait=0.002, padding="full"),
            )
            for index in range(2)
        ],
        placement=ConsistentHashPolicy(replication_factor=2, vnodes=16),
        health=health,
        retry=RetryPolicy(
            max_attempts=4, base_delay=BACKOFF_S, max_delay=BACKOFF_S, jitter=False
        ),
    )
    router.register("lenet", lenet_bundle(), model_factory("lenet", in_channels=1, seed=3))
    store = WindowedSeriesStore(interval=0.25, buckets=64).attach(router.metrics)
    alerts = AlertManager(store)
    alerts.add_slo(
        SLO(
            "gateway-latency",
            LatencyObjective("gateway.latency_ms", target_ms=TARGET_MS, quantile=0.95),
            rules=[BurnRateRule(0.75, 1.5, factor=2.0, severity="page")],
        )
    )
    return router, store, alerts


class Hammer:
    """8 concurrent clients; every failure is recorded, none expected."""

    def __init__(self, client: RemoteClient, sample: np.ndarray, threads: int = 8) -> None:
        self.client = client
        self.sample = sample
        self.stop = threading.Event()
        self.completed = 0
        self.failures = []
        self._lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._run, daemon=True) for _ in range(threads)
        ]

    def _run(self) -> None:
        while not self.stop.is_set():
            try:
                output = self.client.predict("lenet", self.sample)
                assert output.shape == (10,)
                with self._lock:
                    self.completed += 1
            except Exception as error:  # noqa: BLE001 - recorded, asserted empty
                with self._lock:
                    self.failures.append(error)
                return

    def __enter__(self) -> "Hammer":
        for thread in self._threads:
            thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop.set()
        for thread in self._threads:
            thread.join(timeout=30.0)


def test_replica_kill_fires_and_resolves_the_latency_slo_over_the_wire():
    sample = np.random.default_rng(7).standard_normal((1, 28, 28)).astype(np.float32)
    router, store, alerts = make_stack()
    profiler = StageProfiler(hz=50.0)
    with router:
        with profiler:
            with GatewayServer(
                router, server_id="slo-e2e", alerts=alerts, profiler=profiler
            ) as gateway:
                with alerts.start(interval=0.05):
                    with RemoteClient(*gateway.address) as client:
                        granted = client.subscribe(["alert", "health"])
                        assert granted == ["alert", "health"]

                        with Hammer(client, sample) as hammer:
                            # Phase 1 — healthy traffic only: no alert fires.
                            time.sleep(1.0)
                            assert alerts.active() == []
                            healthy_completed = hammer.completed
                            assert healthy_completed > 0

                            # Phase 2 — kill the shard primary mid-run.  Every
                            # request now fails over with a backoff > target.
                            primary = router.shard_map()["lenet"][0]
                            router.replica(primary).kill()
                            firing = client.wait_for_event(
                                topic="alert", name="firing", timeout=30.0
                            )
                            # Pushed while the hammer is still running — the
                            # ledger is still open, requests still in flight.
                            assert not hammer.stop.is_set()
                            assert firing.payload["slo"] == "gateway-latency"
                            assert firing.payload["severity"] == "page"

                            # Phase 3 — recovery: bench the corpse; routing
                            # goes direct to the survivor and the burn drains.
                            # The bench itself is pushed on the health topic
                            # (wait_for_event consumes in order, so take it
                            # before waiting for the later resolved alert).
                            router.health.mark_stopped(primary)
                            stopped = client.wait_for_event(
                                topic="health", name="replica", timeout=10.0
                            )
                            assert stopped.payload["replica_id"] == primary
                            assert stopped.payload["to"] == "stopped"
                            resolved = client.wait_for_event(
                                topic="alert", name="resolved", timeout=30.0
                            )
                            assert resolved.payload["slo"] == "gateway-latency"

                        # Hammer stopped: settle accounts before close.
                        ledger = client.ledger()
                        profile = client.observe(what="profile")["profile"]

    # Zero lost requests: every predict succeeded, through the outage.
    assert hammer.failures == []
    assert hammer.completed > healthy_completed
    assert ledger["failed"] == 0
    assert ledger["pending"] == 0
    assert ledger["submitted"] == ledger["succeeded"]

    # Cross-topic ordering is pinned by one monotonic sequence stream:
    # fire, then bench, then resolve.
    assert 0 < firing.seq < stopped.seq < resolved.seq

    # The alert engine's accounting survived the whole cycle.
    stats = alerts.stats()
    assert stats["fired"] >= 1 and stats["resolved"] >= 1
    assert alerts.active() == []

    # The continuous profiler ran throughout and ships over the wire.
    assert profile is not None
    assert profile["ticks"] > 0 and profile["samples"] > 0

"""Typed-error round-trips: every serving exception survives the wire.

The satellite contract: every ``serve.cluster.errors`` type (plus the
middleware and lifecycle rejections) serialized over the wire must
deserialize to the *same type* with its payload (``retry_after``,
``deadline`` …) preserved, client-side.  The first half pins the codec in
isolation; the second half pins the full path — a backend that raises each
type, a real gateway, a real ``RemoteClient``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import (
    Backpressure,
    ConnectionClosed,
    GatewayError,
    GatewayServer,
    ObfuscationViolation,
    PrivacyBudgetExceeded,
    RateLimitExceeded,
    RemoteClient,
    ServerOverloaded,
    ServerStopped,
    ValidationError,
)
from repro.serve.cluster.errors import (
    DeadlineExceeded,
    FailoverExhausted,
    NoHealthyReplica,
    ReplicaUnavailable,
)
from repro.serve.gateway import wire
from repro.serve.gateway.errors import ProtocolError

from .conftest import EchoBackend


def codec_roundtrip(error: BaseException) -> BaseException:
    return wire.decode_error(wire._Cursor(wire.encode_error(error)))


SAMPLES = [
    RateLimitExceeded("tenant-a", "lenet", 0.125),
    DeadlineExceeded("lenet", "tenant-a", deadline=41.5, now=42.0),
    ServerStopped("server has been stopped; call start() again before submit()"),
    ServerOverloaded("request queue is full (4096 pending)"),
    Backpressure(16, 16),
    ReplicaUnavailable("replica-3", "replica was killed mid-flight"),
    NoHealthyReplica("lenet", excluded=["replica-1", "replica-2"]),
    FailoverExhausted("lenet", 3, ["replica-1", "replica-2", "replica-3"]),
    ValidationError("expected shape (1, 28, 28), got (3,)"),
    ObfuscationViolation("sample width matches the raw plan"),
    ProtocolError("unknown frame type 0x7f"),
    ConnectionClosed("socket reset"),
    GatewayError("generic edge failure"),
    KeyError("unknown model 'nope'; registered: []"),
    ValueError("model 'lenet' is already registered (pass replace=True)"),
    PrivacyBudgetExceeded("tenant-a", "lenet", 2.5, 2.25, 0.5),
]


class TestCodecRoundTrips:
    @pytest.mark.parametrize("error", SAMPLES, ids=lambda e: type(e).__name__)
    def test_type_and_message_preserved(self, error):
        decoded = codec_roundtrip(error)
        assert type(decoded) is type(error)
        assert str(decoded) == str(error)

    def test_codec_covers_every_registered_wire_error(self):
        sampled = {type(error) for error in SAMPLES}
        assert sampled == set(wire._ALL_WIRE_ERRORS), (
            "every exception type with a wire code must have a round-trip sample"
        )

    def test_rate_limit_payload(self):
        decoded = codec_roundtrip(RateLimitExceeded("t", "m", 0.375))
        assert decoded.tenant == "t"
        assert decoded.model_id == "m"
        assert decoded.retry_after == 0.375

    def test_deadline_payload(self):
        decoded = codec_roundtrip(DeadlineExceeded("m", "t", deadline=10.0, now=10.75))
        assert decoded.model_id == "m"
        assert decoded.tenant == "t"
        assert decoded.deadline == 10.0
        assert decoded.late_seconds == pytest.approx(0.75)

    def test_backpressure_payload(self):
        decoded = codec_roundtrip(Backpressure(8, 9))
        assert decoded.limit == 8
        assert decoded.in_flight == 9

    def test_cluster_payloads(self):
        unavailable = codec_roundtrip(ReplicaUnavailable("replica-7", "draining"))
        assert unavailable.replica_id == "replica-7"
        no_healthy = codec_roundtrip(NoHealthyReplica("m", excluded=["a", "b"]))
        assert no_healthy.model_id == "m"
        assert no_healthy.excluded == ["a", "b"]
        exhausted = codec_roundtrip(FailoverExhausted("m", 2, ["a", "b"]))
        assert exhausted.model_id == "m"
        assert exhausted.attempts == 2
        assert exhausted.tried == ["a", "b"]
        # The nested exception cannot cross the wire (its detail stays in the
        # message), but the documented attribute must exist client-side.
        assert exhausted.last_error is None

    def test_unknown_exception_degrades_to_gateway_error(self):
        decoded = codec_roundtrip(ZeroDivisionError("division by zero"))
        assert type(decoded) is GatewayError
        assert "ZeroDivisionError" in str(decoded)
        assert "division by zero" in str(decoded)

    def test_numpy_scalar_payloads_are_coerced(self):
        """Errors raised with numpy scalars (a common backend habit) encode."""
        decoded = codec_roundtrip(RateLimitExceeded("t", "m", np.float64(0.5)))
        assert decoded.retry_after == 0.5
        decoded = codec_roundtrip(Backpressure(np.int64(4), np.int64(5)))
        assert decoded.limit == 4
        assert decoded.in_flight == 5

    def test_unencodable_attr_degrades_instead_of_raising(self):
        """encode_error never raises: exotic attrs fall back to generic form."""
        error = Backpressure(2, 3)
        error.limit = object()  # sabotage a known type's payload
        decoded = codec_roundtrip(error)
        assert type(decoded) is GatewayError
        assert "Backpressure" in str(decoded)

    def test_out_of_range_attr_degrades_instead_of_raising(self):
        """struct.error (int64 overflow) falls back to the generic form too."""
        decoded = codec_roundtrip(Backpressure(2**70, 1))
        assert type(decoded) is GatewayError
        assert "Backpressure" in str(decoded)


class TestOverTheWire:
    """A raising backend behind a real gateway: the client re-raises the type."""

    @pytest.mark.parametrize(
        "error",
        [
            RateLimitExceeded("vip", "lenet", 0.5),
            DeadlineExceeded("lenet", "vip", deadline=1.0, now=1.25),
            ServerStopped("stopped"),
            ServerOverloaded("full"),
            NoHealthyReplica("lenet"),
        ],
        ids=lambda e: type(e).__name__,
    )
    def test_backend_exception_reraised_client_side(self, error):
        backend = EchoBackend(fail_with=error)
        with GatewayServer(backend, server_id="raising") as gateway:
            with RemoteClient(*gateway.address) as client:
                with pytest.raises(type(error)) as caught:
                    client.predict("lenet", np.ones(3, dtype=np.float32))
        assert str(caught.value) == str(error)

    def test_rate_limit_retry_after_survives_the_wire(self):
        backend = EchoBackend(fail_with=RateLimitExceeded("vip", "lenet", 0.625))
        with GatewayServer(backend) as gateway:
            with RemoteClient(*gateway.address) as client:
                with pytest.raises(RateLimitExceeded) as caught:
                    client.predict("lenet", np.ones(3, dtype=np.float32))
        assert caught.value.retry_after == 0.625
        assert caught.value.tenant == "vip"

    def test_unknown_model_keyerror_survives_the_wire(self):
        backend = EchoBackend(fail_with=KeyError("unknown model 'ghost'; registered: []"))
        with GatewayServer(backend) as gateway:
            with RemoteClient(*gateway.address) as client:
                with pytest.raises(KeyError, match="ghost"):
                    client.predict("ghost", np.ones(3, dtype=np.float32))

"""Property-based fuzz of the wire codec and the live gateway socket.

The contract under fuzz: malformed bytes — truncated frames, mutated
headers, random garbage, hostile length prefixes — always surface as typed
``ProtocolError``/``ConnectionClosed`` on whichever side is parsing, and
never hang a reader.  ``decode_payload`` is fuzzed directly, ``read_frame``
through an ``asyncio.StreamReader``, and the full server loop over a real
loopback socket.
"""

from __future__ import annotations

import asyncio
import socket
import struct

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve.gateway.errors import GatewayError, ProtocolError
from repro.serve.gateway.server import GatewayServer
from repro.serve.gateway.wire import (
    MAX_FRAME_BYTES,
    Ack,
    ErrorFrame,
    Frame,
    Goodbye,
    Hello,
    HelloAck,
    Observe,
    ObserveReply,
    Request,
    Response,
    decode_payload,
    encode_frame,
    read_frame,
)

from .conftest import EchoBackend


def sample_frames() -> list:
    array = np.arange(6, dtype=np.float32).reshape(2, 3)
    return [
        Hello(tenant="fuzz", deadline=1.5, window=4),
        HelloAck(window=8, server_id="srv"),
        Request(request_id=7, model_id="m", sample=array, deadline=None, priority=2),
        Response(request_id=7, output=array),
        ErrorFrame(request_id=3, error=ProtocolError("boom")),
        ErrorFrame(request_id=0, error=GatewayError("generic")),
        Goodbye(reason="done"),
        Ack(request_id=9, message="ok"),
        Observe(request_id=5, what="all", max_spans=32),
        ObserveReply(request_id=5, payload={"server_id": "srv", "spans": []}),
    ]
    # A *traced* Request is deliberately absent: the trace suffix is optional
    # by design, so truncating exactly at the suffix boundary produces a valid
    # untraced frame — which would falsify the every-truncation-fails pin.


FRAME_CORPUS = [encode_frame(frame) for frame in sample_frames()]


class TestDecodePayloadFuzz:
    @given(payload=st.binary(max_size=512))
    @settings(max_examples=300)
    def test_garbage_decodes_typed_or_valid(self, payload: bytes):
        try:
            frame = decode_payload(payload)
        except ProtocolError:
            pass  # the typed contract
        else:
            assert isinstance(frame, Frame)

    @given(
        index=st.integers(min_value=0, max_value=len(FRAME_CORPUS) - 1),
        data=st.data(),
    )
    @settings(max_examples=200)
    def test_any_truncation_is_a_protocol_error(self, index: int, data):
        payload = FRAME_CORPUS[index][4:]  # strip the length prefix
        cut = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
        with pytest.raises(ProtocolError):
            decode_payload(payload[:cut])

    @given(
        index=st.integers(min_value=0, max_value=len(FRAME_CORPUS) - 1),
        suffix=st.binary(min_size=1, max_size=32),
    )
    @settings(max_examples=100)
    def test_trailing_bytes_are_a_protocol_error(self, index: int, suffix: bytes):
        payload = FRAME_CORPUS[index][4:]
        with pytest.raises(ProtocolError, match="trailing bytes"):
            decode_payload(payload + suffix)

    @given(
        index=st.integers(min_value=0, max_value=len(FRAME_CORPUS) - 1),
        data=st.data(),
    )
    @settings(max_examples=300)
    def test_single_byte_mutations_never_escape_typed(self, index: int, data):
        payload = bytearray(FRAME_CORPUS[index][4:])
        position = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
        flip = data.draw(st.integers(min_value=1, max_value=255))
        payload[position] ^= flip
        try:
            frame = decode_payload(bytes(payload))
        except ProtocolError:
            pass  # typed rejection
        else:
            # A mutation in free-form content (a tenant string, array bytes)
            # can still parse; it must still be a well-formed frame object.
            assert isinstance(frame, Frame)


class TestReadFrameFuzz:
    def run_read(self, wire_bytes: bytes):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(wire_bytes)
            reader.feed_eof()
            frames = []
            while True:
                frame = await asyncio.wait_for(read_frame(reader), timeout=5)
                if frame is None:
                    return frames
                frames.append(frame)

        return asyncio.run(scenario())

    @given(wire_bytes=st.binary(max_size=256))
    @settings(max_examples=200)
    def test_garbage_streams_end_typed_or_clean(self, wire_bytes: bytes):
        try:
            frames = self.run_read(wire_bytes)
        except ProtocolError:
            return
        assert all(isinstance(frame, Frame) for frame in frames)

    @given(
        index=st.integers(min_value=0, max_value=len(FRAME_CORPUS) - 1),
        data=st.data(),
    )
    @settings(max_examples=100)
    def test_mid_frame_eof_is_a_protocol_error(self, index: int, data):
        frame_bytes = FRAME_CORPUS[index]
        cut = data.draw(st.integers(min_value=1, max_value=len(frame_bytes) - 1))
        with pytest.raises(ProtocolError, match="truncated|trailing|frame"):
            self.run_read(frame_bytes[:cut])

    def test_oversized_length_prefix_is_rejected_before_reading(self):
        declared = MAX_FRAME_BYTES + 1
        with pytest.raises(ProtocolError, match="exceeds MAX_FRAME_BYTES"):
            self.run_read(struct.pack("!I", declared))

    def test_undersized_length_prefix_is_rejected(self):
        with pytest.raises(ProtocolError, match="shorter than a frame header"):
            self.run_read(struct.pack("!I", 1) + b"x")


@pytest.fixture(scope="module")
def live_gateway():
    with GatewayServer(EchoBackend(), server_id="fuzz-target") as gateway:
        yield gateway


def poke_server(address, wire_bytes: bytes, timeout: float = 10.0) -> bytes:
    """Write raw bytes at the gateway, then read until the server closes.

    Returns whatever the server sent back.  Raises ``socket.timeout`` if the
    server neither answers nor closes — the hang the fuzz is hunting for.
    """
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall(wire_bytes)
        sock.shutdown(socket.SHUT_WR)
        received = bytearray()
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return bytes(received)
            received.extend(chunk)


class TestLiveSocketFuzz:
    @given(wire_bytes=st.binary(max_size=128))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_garbage_never_hangs_the_server(self, live_gateway, wire_bytes: bytes):
        response = poke_server(live_gateway.address, wire_bytes)
        if response:
            # Whatever came back is well-formed wire traffic (usually an
            # id-0 ErrorFrame carrying the typed ProtocolError).
            (length,) = struct.unpack_from("!I", response)
            frame = decode_payload(response[4 : 4 + length])
            assert isinstance(frame, Frame)

    @given(
        index=st.integers(min_value=0, max_value=len(FRAME_CORPUS) - 1),
        data=st.data(),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_truncated_frames_never_hang_the_server(self, live_gateway, index, data):
        frame_bytes = FRAME_CORPUS[index]
        cut = data.draw(st.integers(min_value=1, max_value=len(frame_bytes) - 1))
        poke_server(live_gateway.address, frame_bytes[:cut])  # must not hang

    def test_oversized_declared_length_closes_typed(self, live_gateway):
        response = poke_server(live_gateway.address, struct.pack("!I", MAX_FRAME_BYTES + 1))
        if response:
            (length,) = struct.unpack_from("!I", response)
            frame = decode_payload(response[4 : 4 + length])
            assert isinstance(frame, ErrorFrame)
            assert isinstance(frame.error, ProtocolError)

    def test_server_survives_the_fuzz_barrage(self, live_gateway):
        """After everything above, the gateway still serves real traffic."""
        from repro.serve import RemoteClient

        with RemoteClient(*live_gateway.address) as client:
            sample = np.arange(4, dtype=np.float32)
            np.testing.assert_array_equal(client.predict("m", sample), sample * 2.0)

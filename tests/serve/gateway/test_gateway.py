"""GatewayServer edge behaviours: handshake, windows, drain, registration."""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.cloud import pack_model
from repro.serve import (
    Backpressure,
    GatewayServer,
    InferenceServer,
    ModelRegistry,
    RemoteClient,
    ServerStopped,
)
from repro.serve.gateway import wire
from repro.serve.gateway.errors import ProtocolError

from ..conftest import lenet_bundle, make_lenet
from .conftest import EchoBackend


class TestLifecycle:
    def test_start_binds_an_ephemeral_port(self, gateway):
        host, port = gateway.address
        assert host == "127.0.0.1"
        assert port > 0
        assert gateway.running

    def test_stop_is_idempotent_and_restart_works(self, echo_backend):
        server = GatewayServer(echo_backend)
        server.stop()  # stop before start is a no-op
        server.start()
        first_port = server.address[1]
        server.stop()
        server.stop()
        assert not server.running
        server.start()
        try:
            assert server.running
            assert server.address[1] != 0
            with RemoteClient(*server.address) as client:
                out = client.predict("m", np.ones(2, dtype=np.float32))
            assert np.array_equal(out, np.full(2, 2.0, dtype=np.float32))
        finally:
            server.stop()
        assert first_port > 0

    def test_context_manager(self, echo_backend):
        with GatewayServer(echo_backend) as server:
            assert server.running
        assert not server.running
        assert server.stats()["stopped"]

    def test_max_inflight_validation(self, echo_backend):
        with pytest.raises(ValueError):
            GatewayServer(echo_backend, max_inflight=0)


def raw_exchange(address, frames, reply_count, read_timeout=10.0):
    """Open a raw socket, send ``frames`` back-to-back, read ``reply_count`` frames.

    Bypasses the bundled client so tests can violate the protocol on purpose.
    """

    async def run():
        reader, writer = await asyncio.open_connection(*address)
        for frame in frames:
            writer.write(wire.encode_frame(frame))
        await writer.drain()
        replies = []
        for _ in range(reply_count):
            replies.append(await asyncio.wait_for(wire.read_frame(reader), read_timeout))
        writer.close()
        return replies

    return asyncio.run(run())


class TestHandshake:
    def test_first_frame_must_be_hello(self, gateway):
        [reply] = raw_exchange(
            gateway.address,
            [wire.Request(1, "m", np.ones(2, dtype=np.float32))],
            reply_count=1,
        )
        assert isinstance(reply, wire.ErrorFrame)
        assert reply.request_id == 0  # connection-level
        assert isinstance(reply.error, ProtocolError)

    def test_window_is_negotiated_down_to_server_max(self, gateway):
        [ack] = raw_exchange(gateway.address, [wire.Hello(window=10_000)], reply_count=1)
        assert isinstance(ack, wire.HelloAck)
        assert ack.window == gateway.max_inflight
        assert ack.server_id == "test-gateway"

    def test_requested_window_below_max_is_granted(self, gateway):
        [ack] = raw_exchange(gateway.address, [wire.Hello(window=3)], reply_count=1)
        assert ack.window == 3

    def test_request_id_zero_is_a_protocol_violation(self, gateway):
        """Id 0 is the connection-error marker; a request must not claim it."""
        replies = raw_exchange(
            gateway.address,
            [wire.Hello(), wire.Request(0, "m", np.ones(2, dtype=np.float32))],
            reply_count=2,
        )
        ack, reply = replies
        assert isinstance(ack, wire.HelloAck)
        assert isinstance(reply, wire.ErrorFrame)
        assert reply.request_id == 0
        assert isinstance(reply.error, ProtocolError)
        assert "reserved" in str(reply.error)

    def test_tenant_flows_from_hello_to_backend(self, gateway, echo_backend):
        with RemoteClient(*gateway.address, tenant="tenant-42") as client:
            client.predict("m", np.ones(2, dtype=np.float32))
        assert echo_backend.calls == [("m", "tenant-42", None)]

    def test_hello_deadline_is_the_connection_default(self, gateway, echo_backend):
        with RemoteClient(*gateway.address, deadline=5.0) as client:
            client.predict("m", np.ones(2, dtype=np.float32))
            client.predict("m", np.ones(2, dtype=np.float32), deadline=0.5)
        deadlines = [call[2] for call in echo_backend.calls]
        assert deadlines == [5.0, 0.5]  # per-request deadline overrides HELLO


class GatedBackend(EchoBackend):
    """Blocks every predict on an event so tests control completion order."""

    def __init__(self) -> None:
        super().__init__()
        self.release = threading.Event()

    def predict(self, model_id, sample, tenant="default", deadline=None):
        assert self.release.wait(timeout=30), "test never released the backend"
        return super().predict(model_id, sample, tenant=tenant, deadline=deadline)


class TestBackpressure:
    def test_overflowing_the_window_gets_a_typed_frame(self):
        """Two requests pin the window open; the third must bounce, typed.

        The backend is gated on an event, so the window is deterministically
        full when the third request arrives — no sleep-based timing.
        """
        backend = GatedBackend()
        with GatewayServer(backend, max_inflight=2) as gateway:
            sample = np.ones(2, dtype=np.float32)

            async def run():
                reader, writer = await asyncio.open_connection(*gateway.address)
                writer.write(wire.encode_frame(wire.Hello(window=2)))
                await writer.drain()
                ack = await asyncio.wait_for(wire.read_frame(reader), 10)
                for request_id in (1, 2, 3):
                    writer.write(wire.encode_frame(wire.Request(request_id, "m", sample)))
                await writer.drain()
                # 1 and 2 are parked in the backend: the only frame that can
                # arrive now is the typed rejection of 3.
                bounced = await asyncio.wait_for(wire.read_frame(reader), 10)
                backend.release.set()
                late = [await asyncio.wait_for(wire.read_frame(reader), 10) for _ in range(2)]
                writer.close()
                return ack, bounced, late

            ack, bounced, late = asyncio.run(run())
        assert isinstance(ack, wire.HelloAck)
        assert ack.window == 2
        assert isinstance(bounced, wire.ErrorFrame)
        assert bounced.request_id == 3
        assert isinstance(bounced.error, Backpressure)
        assert bounced.error.limit == 2
        assert bounced.error.in_flight == 2
        assert {frame.request_id for frame in late} == {1, 2}
        assert all(isinstance(frame, wire.Response) for frame in late)
        assert gateway.stats()["backpressure"] == 1

    def test_bundled_client_never_trips_backpressure(self):
        backend = EchoBackend(delay=0.01)
        with GatewayServer(backend, max_inflight=4) as gateway:
            with RemoteClient(*gateway.address, window=4) as client:
                outs = client.predict_batch(
                    "m", [np.full(2, i, dtype=np.float32) for i in range(32)]
                )
            assert len(outs) == 32
            assert gateway.stats()["backpressure"] == 0


class TestDrain:
    def test_new_requests_rejected_while_stopping(self, echo_backend):
        server = GatewayServer(echo_backend)
        server.start()
        with RemoteClient(*server.address) as client:
            assert np.array_equal(
                client.predict("m", np.ones(2, dtype=np.float32)),
                np.full(2, 2.0, dtype=np.float32),
            )
            server.stop()
            with pytest.raises(ServerStopped):
                client.predict("m", np.ones(2, dtype=np.float32))

    def test_inflight_requests_complete_during_drain(self):
        backend = EchoBackend(delay=0.2)
        server = GatewayServer(backend)
        server.start()
        client = RemoteClient(*server.address)
        try:
            future = client.submit("m", np.full(3, 7.0, dtype=np.float32))
            deadline = time.monotonic() + 5.0
            while not backend.calls and time.monotonic() < deadline:
                time.sleep(0.005)  # request must be in flight before the drain
            assert backend.calls
            server.stop()  # drain waits for the in-flight request
            assert np.array_equal(future.result(timeout=10), np.full(3, 14.0, dtype=np.float32))
            stats = server.stats()
            assert stats["responses"] == 1
            assert stats["stopped"]
        finally:
            client.close()
            server.stop()


class TestRegistration:
    def test_register_over_the_wire_serves_real_predictions(self):
        registry = ModelRegistry(capacity=2)
        backend = InferenceServer(registry)
        bundle = lenet_bundle()
        with GatewayServer(backend, factories={"lenet": lambda: make_lenet(seed=99)}) as gateway:
            with RemoteClient(*gateway.address) as client:
                registration = client.register(
                    "lenet", bundle, metadata={"task": "classification"}
                )
                assert registration.checksum == bundle.checksum
                assert registration.size_bytes == bundle.size_bytes
                sample = np.random.default_rng(5).standard_normal((1, 28, 28)).astype(np.float32)
                remote_out = client.predict("lenet", sample)
        assert "lenet" in registry
        assert registry.entry("lenet").metadata["task"] == "classification"
        expected = backend.predict("lenet", sample)
        np.testing.assert_array_equal(remote_out, expected)

    def test_register_without_factory_raises_keyerror_client_side(self, gateway):
        bundle = pack_model(make_lenet(), task="classification")
        with RemoteClient(*gateway.address) as client:
            with pytest.raises(KeyError, match="no architecture factory"):
                client.register("ghost", bundle)

    def test_factory_resolver_fallback(self):
        registry = ModelRegistry(capacity=2)
        backend = InferenceServer(registry)
        seen = {}

        def resolver(model_id, architecture):
            seen[model_id] = architecture["total_parameters"]
            return lambda: make_lenet(seed=99)

        bundle = lenet_bundle()
        with GatewayServer(backend, factory_resolver=resolver) as gateway:
            with RemoteClient(*gateway.address) as client:
                client.register("resolved", bundle)
        assert "resolved" in registry
        assert seen["resolved"] == bundle.architecture["total_parameters"]


class TestUnencodableReplies:
    def test_backend_returning_unserializable_output_answers_typed(self):
        """A backend reply the wire refuses must not hang the client."""

        class NoneBackend:
            def predict(self, model_id, sample, tenant="default"):
                return None  # np.asarray(None) -> object dtype -> refused

        with GatewayServer(NoneBackend()) as gateway:
            with RemoteClient(*gateway.address) as client:
                with pytest.raises(ProtocolError, match="refusing to serialize"):
                    client.predict("m", np.ones(2, dtype=np.float32))
        assert gateway.stats()["errors"] == 1


class TestHandshakeFailureCleanup:
    def test_failed_handshake_closes_the_socket(self):
        """connect() must not leak its socket when the server rejects HELLO."""

        async def run():
            async def reject(reader, writer):
                await wire.read_frame(reader)  # the HELLO
                writer.write(
                    wire.encode_frame(wire.ErrorFrame(0, ProtocolError("no thanks")))
                )
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(reject, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            from repro.serve.gateway import AsyncRemoteClient

            client = AsyncRemoteClient("127.0.0.1", port)
            with pytest.raises(ProtocolError, match="no thanks"):
                await client.connect()
            closing = client._writer.is_closing()
            server.close()
            await server.wait_closed()
            return closing, client.closed

        closing, closed = asyncio.run(run())
        assert closing  # the freshly opened socket was released
        assert closed


class TestStats:
    def test_counters(self, gateway):
        with RemoteClient(*gateway.address) as client:
            client.predict("m", np.ones(2, dtype=np.float32))
            client.predict("m", np.ones(2, dtype=np.float32))
        stats = gateway.stats()
        assert stats["connections"] == 1
        assert stats["requests"] == 2
        assert stats["responses"] == 2
        assert stats["errors"] == 0
        assert stats["running"]

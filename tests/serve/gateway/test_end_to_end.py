"""End-to-end acceptance pins for the network gateway.

1. **Byte-identity**: ``ExtractionProxy`` over ``RemoteClient`` →
   ``GatewayServer`` → ``ClusterRouter`` on loopback returns byte-identical
   outputs to the in-process path.  Two proxies built from the same secrets
   draw the same augmentation-noise sequence, and ``padding="full"`` makes
   replica batches bit-reproducible regardless of how the wire coalesces
   requests, so any mismatch is a real wire/serving defect.
2. **Zero-loss drain**: a mid-run gateway drain under an 8-client concurrent
   hammer loses nothing — every request either returns a correct result or
   fails with a typed ``ServerStopped``; no future hangs, no silent drops.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.cloud import CloudSession
from repro.core import Amalgam, AmalgamConfig
from repro.data import make_mnist
from repro.models import LeNet
from repro.serve import (
    AdmissionScheduler,
    Batcher,
    ClusterRouter,
    ExtractionProxy,
    GatewayServer,
    RemoteClient,
    ReplicaWorker,
    ServeMiddleware,
    ServerStopped,
)

from .conftest import EchoBackend


@pytest.fixture(scope="module")
def obfuscated_job():
    data = make_mnist(train_count=24, val_count=8, seed=11)
    config = AmalgamConfig(augmentation_amount=0.5, num_subnetworks=2, seed=11)
    job = Amalgam(config).prepare_image_job(
        LeNet(10, 1, 28, rng=np.random.default_rng(11)), data
    )
    return job, data


def make_cluster() -> ClusterRouter:
    return ClusterRouter(
        [
            ReplicaWorker(
                f"replica-{index}",
                batcher=Batcher(max_batch_size=8, max_wait=0.002, padding="full"),
            )
            for index in range(2)
        ],
        admission=AdmissionScheduler(tenant_priorities={"vip": 5}),
    )


class TestByteIdentityOverLoopback:
    def test_proxy_over_gateway_matches_in_process(self, obfuscated_job):
        job, data = obfuscated_job
        raw = [np.asarray(sample) for sample in data.validation.samples[:8]]

        router = make_cluster()
        CloudSession.publish(job, router, "lenet-aug")

        # In-process reference: sync path on the same (not yet started) cluster.
        in_process_proxy = ExtractionProxy(job.secrets)
        expected = in_process_proxy.predict_batch(router, "lenet-aug", raw)

        # Remote path: a fresh proxy from the same secrets draws the identical
        # augmentation-noise sequence; every call crosses the loopback socket
        # and the cluster's admission/submit machinery.
        with router:
            with GatewayServer(router, server_id="e2e") as gateway:
                with RemoteClient(*gateway.address, tenant="vip") as remote:
                    remote_proxy = ExtractionProxy(job.secrets)
                    actual = remote_proxy.predict_batch(remote, "lenet-aug", raw)

        assert len(actual) == len(expected)
        for remote_out, local_out in zip(actual, expected):
            assert remote_out.dtype == local_out.dtype
            assert remote_out.tobytes() == local_out.tobytes()  # byte-identical

    def test_proxy_submit_path_over_the_wire(self, obfuscated_job):
        """ExtractionProxy.submit works unchanged against a RemoteClient."""
        job, data = obfuscated_job
        raw = [np.asarray(sample) for sample in data.validation.samples[:4]]
        router = make_cluster()
        CloudSession.publish(job, router, "lenet-aug")
        # Per-sample reference calls so the noise-draw order matches submit's
        # one-augment-per-request pattern on the remote side.
        reference_proxy = ExtractionProxy(job.secrets)
        expected = [reference_proxy.predict(router, "lenet-aug", sample) for sample in raw]
        with router:
            with GatewayServer(router) as gateway:
                with RemoteClient(*gateway.address) as remote:
                    proxy = ExtractionProxy(job.secrets)
                    futures = [proxy.submit(remote, "lenet-aug", sample) for sample in raw]
                    outputs = [future.result(timeout=60) for future in futures]
        for output, reference in zip(outputs, expected):
            assert output.tobytes() == reference.tobytes()

    def test_tenant_rides_the_handshake_into_admission(self, obfuscated_job):
        job, data = obfuscated_job
        router = make_cluster()
        CloudSession.publish(job, router, "lenet-aug")
        proxy = ExtractionProxy(job.secrets)
        with router:
            with GatewayServer(router) as gateway:
                with RemoteClient(*gateway.address, tenant="vip") as remote:
                    proxy.predict(remote, "lenet-aug", np.asarray(data.validation.samples[0]))
                    admission = router.admission.stats()
        assert admission["admitted"] >= 1
        assert admission["dispatched"] >= 1

    def test_handshake_terms_reach_the_middleware_context(self, obfuscated_job):
        """HELLO tenant + deadline surface in the cluster RequestContext."""
        job, data = obfuscated_job
        observed = []

        class Recorder(ServeMiddleware):
            def on_request(self, context):
                observed.append((context.tenant, context.deadline, context.source))

        router = ClusterRouter(
            [
                ReplicaWorker(
                    "replica-0",
                    batcher=Batcher(max_batch_size=8, max_wait=0.002, padding="full"),
                )
            ],
            middleware=[Recorder()],
        )
        CloudSession.publish(job, router, "lenet-aug")
        proxy = ExtractionProxy(job.secrets)
        with router:
            with GatewayServer(router) as gateway:
                with RemoteClient(*gateway.address, tenant="vip", deadline=30.0) as remote:
                    proxy.predict(remote, "lenet-aug", np.asarray(data.validation.samples[0]))
        assert observed
        tenant, deadline, source = observed[0]
        assert tenant == "vip"
        assert source == "cluster"
        assert deadline is not None  # absolute = router clock + the HELLO's 30s


class TestZeroLossDrain:
    def test_mid_run_drain_loses_no_inflight_requests(self):
        """8 concurrent clients hammer; the gateway drains mid-run.

        Every request must resolve: either a correct result (accepted before
        the drain edge) or a typed ServerStopped (after it).  Anything else —
        a hang, a ConnectionClosed, a wrong payload — is a lost request.
        """
        backend = EchoBackend(delay=0.01)
        server = GatewayServer(backend, max_inflight=8)
        server.start()
        num_clients = 8
        per_client = 40
        results = {index: {"ok": 0, "stopped": 0, "other": []} for index in range(num_clients)}
        barrier = threading.Barrier(num_clients + 1)

        def client_loop(index: int) -> None:
            with RemoteClient(*server.address, window=4) as client:
                barrier.wait(timeout=30)
                for i in range(per_client):
                    value = float(index * 1000 + i)
                    try:
                        out = client.predict("m", np.full(4, value, dtype=np.float32))
                    except ServerStopped:
                        results[index]["stopped"] += 1
                    except BaseException as error:  # noqa: BLE001 - recorded
                        results[index]["other"].append(repr(error))
                    else:
                        if np.array_equal(out, np.full(4, value * 2.0, dtype=np.float32)):
                            results[index]["ok"] += 1
                        else:
                            results[index]["other"].append(f"wrong payload for {value}")

        threads = [
            threading.Thread(target=client_loop, args=(index,)) for index in range(num_clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait(timeout=30)
        time.sleep(0.15)  # let the hammer reach steady state
        server.stop()  # mid-run drain
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads), "a client hung: lost request"

        total_ok = sum(entry["ok"] for entry in results.values())
        total_stopped = sum(entry["stopped"] for entry in results.values())
        others = [problem for entry in results.values() for problem in entry["other"]]
        assert not others, others
        assert total_ok + total_stopped == num_clients * per_client
        assert total_ok > 0, "drain should have let some requests complete"
        assert total_stopped > 0, "drain happened mid-run, some requests must be rejected"
        # The gateway's own ledger balances: every accepted request answered.
        stats = server.stats()
        assert stats["responses"] == total_ok
        assert stats["inflight"] == 0

    def test_drain_with_cluster_backend(self, obfuscated_job):
        """Drain over a real cluster: accepted obfuscated requests complete."""
        job, data = obfuscated_job
        router = make_cluster()
        CloudSession.publish(job, router, "lenet-aug")
        proxy = ExtractionProxy(job.secrets)
        raw = [np.asarray(sample) for sample in data.validation.samples[:8]]
        with router:
            gateway = GatewayServer(router)
            gateway.start()
            client = RemoteClient(*gateway.address, window=8)
            try:
                futures = [proxy.submit(client, "lenet-aug", sample) for sample in raw]
                gateway.stop()
                outcomes = {"ok": 0, "stopped": 0}
                for future in futures:
                    try:
                        output = future.result(timeout=60)
                    except ServerStopped:
                        outcomes["stopped"] += 1
                    else:
                        assert output.ndim >= 1
                        outcomes["ok"] += 1
                assert outcomes["ok"] + outcomes["stopped"] == len(raw)
            finally:
                client.close()
                gateway.stop()

"""RemoteClient / AsyncRemoteClient: the drop-in remote serving surface."""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.serve import (
    ConnectionClosed,
    GatewayServer,
    InferenceServer,
    ProtocolError,
    RemoteClient,
)
from repro.serve.gateway import AsyncRemoteClient

from .conftest import EchoBackend


class TestSyncFacade:
    def test_predict_matches_backend(self, gateway):
        sample = np.arange(6, dtype=np.float32).reshape(2, 3)
        with RemoteClient(*gateway.address) as client:
            out = client.predict("m", sample)
        np.testing.assert_array_equal(out, sample * 2.0)

    def test_predict_batch_preserves_order(self, gateway):
        samples = [np.full((2,), float(i), dtype=np.float32) for i in range(20)]
        with RemoteClient(*gateway.address, pool_size=3) as client:
            outs = client.predict_batch("m", samples)
        assert len(outs) == 20
        for index, out in enumerate(outs):
            np.testing.assert_array_equal(out, samples[index] * 2.0)

    def test_submit_returns_concurrent_future(self, gateway):
        with RemoteClient(*gateway.address) as client:
            future = client.submit("m", np.ones(2, dtype=np.float32))
            result = future.result(timeout=10)
        np.testing.assert_array_equal(result, np.full(2, 2.0, dtype=np.float32))

    def test_pool_round_robins_connections(self, echo_backend, gateway):
        with RemoteClient(*gateway.address, pool_size=2) as client:
            client.predict_batch("m", [np.ones(2, dtype=np.float32)] * 4)
        assert gateway.stats()["connections"] == 2

    def test_closed_client_raises(self, gateway):
        client = RemoteClient(*gateway.address)
        client.close()
        client.close()  # idempotent
        with pytest.raises(ConnectionClosed):
            client.predict("m", np.ones(2, dtype=np.float32))

    def test_pool_size_validation(self, gateway):
        with pytest.raises(ValueError):
            RemoteClient(*gateway.address, pool_size=0)

    def test_unencodable_sample_is_a_precise_client_side_error(self, gateway):
        """An encode-time failure surfaces as ProtocolError (not a bogus
        ConnectionClosed) and leaves the connection usable."""
        with RemoteClient(*gateway.address) as client:
            with pytest.raises(ProtocolError, match="refusing to serialize"):
                client.predict("m", np.array([object()], dtype=object))
            out = client.predict("m", np.ones(2, dtype=np.float32))
        np.testing.assert_array_equal(out, np.full(2, 2.0, dtype=np.float32))

    def test_concurrent_hammer_is_correct(self, gateway):
        """8 threads sharing one client: every reply matches its request."""
        with RemoteClient(*gateway.address, pool_size=2) as client:
            failures = []

            def hammer(thread_index: int) -> None:
                for i in range(16):
                    value = float(thread_index * 100 + i)
                    out = client.predict("m", np.full(3, value, dtype=np.float32))
                    if not np.array_equal(out, np.full(3, value * 2.0, dtype=np.float32)):
                        failures.append((thread_index, i))

            threads = [threading.Thread(target=hammer, args=(index,)) for index in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not failures


class TestBatchFailureIsolation:
    def test_one_failure_does_not_cancel_siblings_or_leak_window_slots(self):
        """A failing request in a batch must not cancel in-flight siblings —
        cancelled callers would free client window slots the server still
        counts, tripping spurious Backpressure on a tight window."""

        class FlakyBackend(EchoBackend):
            def predict(self, model_id, sample, tenant="default", deadline=None):
                if float(np.asarray(sample).flat[0]) == 3.0:
                    raise ValueError("boom on three")
                return np.asarray(sample) * 2.0

        with GatewayServer(FlakyBackend(), max_inflight=2) as gateway:
            with RemoteClient(*gateway.address, window=2) as client:
                samples = [np.full(2, float(i), dtype=np.float32) for i in range(8)]
                with pytest.raises(ValueError, match="boom on three"):
                    client.predict_batch("m", samples)
                # The connection stays healthy and correctly window-synced.
                out = client.predict("m", np.full(2, 5.0, dtype=np.float32))
            np.testing.assert_array_equal(out, np.full(2, 10.0, dtype=np.float32))
            stats = gateway.stats()
        assert stats["backpressure"] == 0
        assert stats["requests"] == 9  # all eight batch requests + the probe


class TestPipelining:
    def test_responses_arrive_out_of_order(self):
        """A slow first request must not convoy the fast one behind it.

        The slow request is gated on an event the test only sets *after* the
        fast one has returned, so the overtake is deterministic.
        """
        release_slow = threading.Event()

        class StaggeredBackend(EchoBackend):
            def predict(self, model_id, sample, tenant="default", deadline=None):
                if float(np.asarray(sample).flat[0]) == 0.0:
                    assert release_slow.wait(timeout=30)  # parked until released
                return np.asarray(sample) * 2.0

        backend = StaggeredBackend()
        completion_order = []
        with GatewayServer(backend, max_inflight=8) as gateway:
            with RemoteClient(*gateway.address) as client:
                slow = client.submit("m", np.zeros(2, dtype=np.float32))
                fast = client.submit("m", np.ones(2, dtype=np.float32))
                slow.add_done_callback(lambda f: completion_order.append("slow"))
                fast.add_done_callback(lambda f: completion_order.append("fast"))
                np.testing.assert_array_equal(
                    fast.result(timeout=10), np.full(2, 2.0, dtype=np.float32)
                )
                assert not slow.done()  # fast overtook slow on the same socket
                release_slow.set()
                np.testing.assert_array_equal(
                    slow.result(timeout=10), np.zeros(2, dtype=np.float32)
                )
        assert completion_order == ["fast", "slow"]


class TestAsyncClient:
    def test_async_predict_batch_pipelines_within_the_window(self, gateway):
        async def run():
            client = await AsyncRemoteClient(*gateway.address, window=4).connect()
            try:
                assert client.window == 4
                samples = [np.full(2, float(i), dtype=np.float32) for i in range(12)]
                outs = await client.predict_batch("m", samples)
                return samples, outs
            finally:
                await client.close()

        samples, outs = asyncio.run(run())
        for sample, out in zip(samples, outs):
            np.testing.assert_array_equal(out, sample * 2.0)

    def test_handshake_grants_server_window_by_default(self, gateway):
        async def run():
            client = await AsyncRemoteClient(*gateway.address).connect()
            try:
                return client.window, client.server_id
            finally:
                await client.close()

        window, server_id = asyncio.run(run())
        assert window == gateway.max_inflight
        assert server_id == "test-gateway"


class TestUnderProxySurface:
    """The remote client satisfies the duck type the in-process stack expects."""

    def test_has_the_inference_server_surface(self):
        for name in ("predict", "predict_batch", "submit", "submit_many", "register"):
            assert callable(getattr(RemoteClient, name))
        for name in ("predict", "predict_batch", "register"):
            assert callable(getattr(AsyncRemoteClient, name))

    def test_real_inference_server_backend(self, registry):
        """Against a real InferenceServer backend (sync predict path)."""
        backend = InferenceServer(registry)
        sample = np.random.default_rng(3).standard_normal((1, 28, 28)).astype(np.float32)
        expected = backend.predict("lenet", sample)
        with GatewayServer(backend) as gateway:
            with RemoteClient(*gateway.address) as client:
                out = client.predict("lenet", sample)
        np.testing.assert_array_equal(out, expected)

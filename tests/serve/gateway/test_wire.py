"""Wire-protocol codec: every frame type round-trips byte-exactly."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.serve.gateway import wire
from repro.serve.gateway.errors import ProtocolError
from repro.serve.observability import TraceContext


def roundtrip(frame):
    data = wire.encode_frame(frame)
    (length,) = struct.unpack("!I", data[:4])
    assert length == len(data) - 4
    return wire.decode_payload(data[4:])


class TestFrameRoundTrips:
    def test_hello(self):
        frame = roundtrip(wire.Hello(tenant="alice", deadline=2.5, window=7))
        assert isinstance(frame, wire.Hello)
        assert frame.tenant == "alice"
        assert frame.deadline == 2.5
        assert frame.window == 7

    def test_hello_defaults(self):
        frame = roundtrip(wire.Hello())
        assert frame.tenant == "default"
        assert frame.deadline is None  # NaN wire encoding means "absent"
        assert frame.window == 0

    def test_hello_ack(self):
        frame = roundtrip(wire.HelloAck(window=32, server_id="edge-1"))
        assert isinstance(frame, wire.HelloAck)
        assert frame.window == 32
        assert frame.server_id == "edge-1"

    @pytest.mark.parametrize(
        "array",
        [
            np.arange(12, dtype=np.float32).reshape(3, 4),
            np.arange(8, dtype=np.int64),
            np.array(3.5, dtype=np.float64),  # 0-d
            np.zeros((2, 0, 3), dtype=np.float32),  # empty dimension
            np.array([True, False, True]),
        ],
        ids=["f32-2d", "i64-1d", "f64-0d", "empty-dim", "bool"],
    )
    def test_request_arrays(self, array):
        frame = roundtrip(
            wire.Request(request_id=9, model_id="m", sample=array, deadline=None, priority=None)
        )
        assert isinstance(frame, wire.Request)
        assert frame.request_id == 9
        assert frame.sample.dtype == array.dtype
        assert frame.sample.shape == array.shape
        assert np.array_equal(frame.sample, array)

    def test_request_sla_terms(self):
        frame = roundtrip(
            wire.Request(1, "m", np.ones(2, dtype=np.float32), deadline=0.25, priority=-3)
        )
        assert frame.deadline == 0.25
        assert frame.priority == -3
        bare = roundtrip(wire.Request(2, "m", np.ones(2, dtype=np.float32)))
        assert bare.deadline is None
        assert bare.priority is None

    def test_priority_zero_is_preserved(self):
        frame = roundtrip(wire.Request(1, "m", np.ones(1, dtype=np.float32), priority=0))
        assert frame.priority == 0

    def test_response(self):
        output = np.random.default_rng(0).standard_normal((2, 10)).astype(np.float32)
        frame = roundtrip(wire.Response(request_id=11, output=output))
        assert isinstance(frame, wire.Response)
        assert frame.request_id == 11
        assert np.array_equal(frame.output, output)

    def test_goodbye(self):
        frame = roundtrip(wire.Goodbye("gateway drained"))
        assert isinstance(frame, wire.Goodbye)
        assert frame.reason == "gateway drained"

    def test_register(self):
        frame = roundtrip(
            wire.Register(
                request_id=4,
                model_id="lenet-aug",
                payload=b"\x00\x01\x02parameters",
                architecture={"task": "classification", "total_parameters": 42},
                metadata={"input_shape": [1, 28, 28], "input_dtype": "float32"},
                replace=True,
            )
        )
        assert isinstance(frame, wire.Register)
        assert frame.model_id == "lenet-aug"
        assert frame.payload == b"\x00\x01\x02parameters"
        assert frame.architecture["total_parameters"] == 42
        assert frame.metadata["input_shape"] == [1, 28, 28]
        assert frame.replace is True

    def test_ack(self):
        frame = roundtrip(wire.Ack(request_id=4, message="sha256deadbeef"))
        assert isinstance(frame, wire.Ack)
        assert frame.message == "sha256deadbeef"

    def test_request_trace_suffix(self):
        context = TraceContext(trace_id="a" * 32, span_id="b" * 16, sampled=True)
        frame = roundtrip(
            wire.Request(3, "m", np.ones(2, dtype=np.float32), trace=context)
        )
        assert frame.trace == context

    def test_request_unsampled_trace(self):
        context = TraceContext(trace_id="c" * 32, span_id="d" * 16, sampled=False)
        frame = roundtrip(
            wire.Request(3, "m", np.ones(2, dtype=np.float32), trace=context)
        )
        assert frame.trace is not None
        assert frame.trace.sampled is False

    def test_untraced_request_has_no_suffix(self):
        """An untraced frame encodes byte-identically to the pre-trace wire."""
        frame = roundtrip(wire.Request(3, "m", np.ones(2, dtype=np.float32)))
        assert frame.trace is None

    def test_observe(self):
        frame = roundtrip(wire.Observe(request_id=6, what="spans", max_spans=64))
        assert isinstance(frame, wire.Observe)
        assert frame.request_id == 6
        assert frame.what == "spans"
        assert frame.max_spans == 64

    def test_observe_reply(self):
        payload = {
            "server_id": "edge-1",
            "metrics": {"gateway": {"requests": 3}},
            "spans": [{"trace_id": "a" * 32, "name": "gateway.request"}],
        }
        frame = roundtrip(wire.ObserveReply(request_id=6, payload=payload))
        assert isinstance(frame, wire.ObserveReply)
        assert frame.payload == payload

    def test_observe_reply_coerces_unjsonable_values(self):
        """default=str keeps a snapshot with exotic values encodable."""
        payload = {"weird": {1, 2}}  # a set is not JSON-serializable
        frame = roundtrip(wire.ObserveReply(request_id=1, payload=payload))
        assert isinstance(frame.payload["weird"], str)


class TestProtocolGuards:
    def test_version_mismatch(self):
        data = wire.encode_frame(wire.Goodbye("x"))
        payload = bytearray(data[4:])
        payload[0] = wire.WIRE_VERSION + 1
        with pytest.raises(ProtocolError, match="wire version"):
            wire.decode_payload(bytes(payload))

    def test_unknown_frame_type(self):
        payload = struct.pack("!BB", wire.WIRE_VERSION, 0x7F)
        with pytest.raises(ProtocolError, match="unknown frame type"):
            wire.decode_payload(payload)

    def test_truncated_payload(self):
        data = wire.encode_frame(wire.Hello(tenant="abcdef"))
        with pytest.raises(ProtocolError, match="truncated"):
            wire.decode_payload(data[4:10])

    def test_object_dtype_rejected_on_encode(self):
        with pytest.raises(ProtocolError, match="refusing to serialize"):
            wire.encode_frame(wire.Response(1, np.array([object()], dtype=object)))

    def test_array_length_mismatch_rejected(self):
        data = bytearray(wire.encode_frame(wire.Response(1, np.zeros(4, dtype=np.float32))))
        # Corrupt the trailing byte-length field's buffer: drop the last byte
        # of the array body and fix up the frame length prefix.
        truncated = bytes(data[:4]) + bytes(data[4:-1])
        truncated = struct.pack("!I", len(truncated) - 4) + truncated[4:]
        with pytest.raises(ProtocolError):
            wire.decode_payload(truncated[4:])

    def test_out_of_range_frame_fields_are_protocol_errors(self):
        """struct.error never leaks from encode_frame: typed failure only."""
        with pytest.raises(ProtocolError, match="unencodable frame field"):
            wire.encode_frame(wire.Hello(window=-1))
        with pytest.raises(ProtocolError, match="unencodable frame field"):
            wire.encode_frame(
                wire.Request(1, "m", np.ones(1, dtype=np.float32), priority=2**70)
            )

    def test_malformed_register_json_is_a_protocol_error(self):
        """Invalid JSON in a REGISTER body must not leak a JSONDecodeError."""
        data = wire.encode_frame(
            wire.Register(1, "m", b"x", architecture={}, metadata={})
        )
        corrupted = data[4:].replace(b"{}", b"{!", 1)  # same length, bad JSON
        with pytest.raises(ProtocolError, match="malformed frame payload"):
            wire.decode_payload(corrupted)

    def test_garbage_after_sample_is_not_a_trace(self):
        """Trailing bytes that are not a marked trace suffix stay an error."""
        data = wire.encode_frame(wire.Request(1, "m", np.ones(1, dtype=np.float32)))
        with pytest.raises(ProtocolError, match="trailing bytes"):
            wire.decode_payload(data[4:] + b"\x00\x07garbage")

    def test_garbage_after_trace_suffix_is_rejected(self):
        context = TraceContext(trace_id="a" * 32, span_id="b" * 16)
        data = wire.encode_frame(
            wire.Request(1, "m", np.ones(1, dtype=np.float32), trace=context)
        )
        with pytest.raises(ProtocolError, match="trailing bytes"):
            wire.decode_payload(data[4:] + b"\x01")

    def test_empty_trace_ids_are_rejected(self):
        """A suffix whose ids are empty strings is garbage, not a trace."""
        data = wire.encode_frame(wire.Request(1, "m", np.ones(1, dtype=np.float32)))
        bogus = struct.pack("!B", wire.TRACE_MARKER) + struct.pack("!I", 0)
        bogus += struct.pack("!I", 0) + struct.pack("!B", 1)
        with pytest.raises(ProtocolError, match="trailing bytes"):
            wire.decode_payload(data[4:] + bogus)

    def test_unknown_observe_scope_is_rejected_server_side(self):
        """The wire accepts any 'what'; scope validation is the gateway's."""
        frame = roundtrip(wire.Observe(request_id=1, what="everything"))
        assert frame.what == "everything"

    def test_non_contiguous_arrays_are_encoded(self):
        base = np.arange(16, dtype=np.float32).reshape(4, 4)
        view = base[:, ::2]  # non-contiguous
        frame = roundtrip(wire.Response(1, view))
        assert np.array_equal(frame.output, view)

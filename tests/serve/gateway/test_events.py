"""The server-push event plane: SUBSCRIBE/EVENT frames end to end.

A client subscribes to topics; the gateway fans out alert, health and
autoscale transitions as EVENT frames without blocking the request path.
Sequence numbers are minted from one monotonic counter across all topics,
so cross-topic ordering is pinned.
"""

from __future__ import annotations

import time

import pytest

from repro.serve import (
    AlertManager,
    GatewayServer,
    HealthMonitor,
    ProtocolError,
    RemoteClient,
    SLO,
    WindowedSeriesStore,
)
from repro.serve.observability.slo import BurnRateRule, LatencyObjective

from .conftest import EchoBackend


def wait_until(condition, timeout: float = 5.0, interval: float = 0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return True
        time.sleep(interval)
    return condition()


class TestSubscribe:
    def test_subscribe_acks_the_granted_topics(self, gateway):
        with RemoteClient(*gateway.address) as client:
            granted = client.subscribe(["health", "alert"])
        assert granted == ["alert", "health"]
        assert gateway.stats()["subscriptions"] == 1

    def test_unknown_topic_is_a_typed_protocol_error(self, gateway):
        with RemoteClient(*gateway.address) as client:
            with pytest.raises(ProtocolError, match="unknown event topics"):
                client.subscribe(["alert", "bogus"])

    def test_resubscribe_replaces_and_empty_unsubscribes(self, gateway):
        with RemoteClient(*gateway.address) as client:
            client.subscribe(["alert"])
            client.subscribe(["health"])  # replaces, not unions
            gateway.publish_event("alert", "firing", {"x": 1})
            gateway.publish_event("health", "replica", {"y": 2})
            event = client.wait_for_event(timeout=5.0)
            assert event.topic == "health"
            assert client.subscribe([]) == []  # unsubscribed
            gateway.publish_event("health", "replica", {"z": 3})
            time.sleep(0.2)
            assert client.events() == []


class TestPublish:
    def test_published_events_reach_subscribed_clients(self, gateway):
        with RemoteClient(*gateway.address) as client:
            client.subscribe(["alert"])
            seq = gateway.publish_event("alert", "firing", {"slo": "latency"})
            assert seq > 0
            event = client.wait_for_event(topic="alert", timeout=5.0)
        assert event.name == "firing"
        assert event.payload == {"slo": "latency"}
        assert event.seq == seq
        assert event.timestamp > 0

    def test_unsubscribed_clients_see_nothing(self, gateway):
        with RemoteClient(*gateway.address) as client:
            gateway.publish_event("alert", "firing", {})
            time.sleep(0.2)
            assert client.events() == []

    def test_seq_is_monotonic_across_topics(self, gateway):
        with RemoteClient(*gateway.address) as client:
            client.subscribe(["alert", "health", "autoscale"])
            expected = []
            for topic, name in [
                ("alert", "firing"),
                ("health", "replica"),
                ("autoscale", "join"),
                ("alert", "resolved"),
            ]:
                expected.append(gateway.publish_event(topic, name, {}))
            assert wait_until(lambda: len(client._pool[0]._events) >= 4)
            events = client.events()
        sequences = [event.seq for event in events]
        assert sequences == expected
        assert sequences == sorted(sequences)

    def test_publish_with_no_server_running_is_dropped(self, echo_backend):
        server = GatewayServer(echo_backend)
        assert server.publish_event("alert", "firing", {}) == 0
        assert server.stats()["events_dropped"] == 1

    def test_events_drain_oldest_first_and_do_not_block_requests(self, gateway):
        import numpy as np

        with RemoteClient(*gateway.address) as client:
            client.subscribe(["health"])
            for index in range(5):
                gateway.publish_event("health", "replica", {"index": index})
            # The request path is untouched by event fan-out.
            output = client.predict("any-model", np.ones((2, 2), dtype=np.float32))
            assert output.tolist() == [[2.0, 2.0], [2.0, 2.0]]
            assert wait_until(lambda: len(client._pool[0]._events) >= 5)
            events = client.events()
        assert [event.payload["index"] for event in events] == [0, 1, 2, 3, 4]
        assert client.events() == []  # drained

    def test_wait_for_event_times_out_cleanly(self, gateway):
        with RemoteClient(*gateway.address) as client:
            client.subscribe(["alert"])
            with pytest.raises(TimeoutError):
                client.wait_for_event(topic="alert", timeout=0.2)


class TestEventSources:
    def test_alert_manager_transitions_are_pushed(self, echo_backend):
        store = WindowedSeriesStore(interval=0.1, buckets=64)
        alerts = AlertManager(store)
        alerts.add_slo(
            SLO(
                "edge-latency",
                LatencyObjective("gateway.latency_ms", target_ms=10.0),
                rules=[BurnRateRule(0.2, 0.4, factor=1.0)],
            )
        )
        with GatewayServer(echo_backend, alerts=alerts) as gateway:
            with RemoteClient(*gateway.address) as client:
                client.subscribe(["alert"])
                for _ in range(50):
                    store.record_observation("gateway.latency_ms", 100.0)
                time.sleep(0.45)  # both windows see only bad samples
                for _ in range(50):
                    store.record_observation("gateway.latency_ms", 100.0)
                alerts.evaluate()
                event = client.wait_for_event(topic="alert", name="firing", timeout=5.0)
        assert event.payload["slo"] == "edge-latency"
        assert event.payload["state"] == "firing"
        # The manager's stats surface rides the gateway's metrics plane.
        assert gateway.metrics.collect(["slo"])["slo"]["fired"] == 1

    def test_health_monitor_transitions_are_pushed(self, echo_backend):
        monitor = HealthMonitor(failure_threshold=2)
        monitor.register("r0")
        echo_backend.health = monitor
        with GatewayServer(echo_backend) as gateway:
            with RemoteClient(*gateway.address) as client:
                client.subscribe(["health"])
                monitor.record_failure("r0")
                monitor.record_failure("r0")  # healthy -> unhealthy
                event = client.wait_for_event(topic="health", timeout=5.0)
        assert event.name == "replica"
        assert event.payload["replica_id"] == "r0"
        assert event.payload["from"] == "healthy"
        assert event.payload["to"] == "unhealthy"

    def test_membership_changes_are_pushed(self, echo_backend):
        listeners = []
        echo_backend.add_membership_listener = listeners.append
        with GatewayServer(echo_backend) as gateway:
            with RemoteClient(*gateway.address) as client:
                client.subscribe(["autoscale"])
                [notify] = listeners
                notify("join", "auto-1")
                event = client.wait_for_event(topic="autoscale", timeout=5.0)
        assert event.name == "join"
        assert event.payload == {"replica_id": "auto-1"}


class TestClientBuffering:
    def test_buffer_is_bounded_drop_oldest(self, gateway):
        from repro.serve.gateway.client import MAX_BUFFERED_EVENTS

        with RemoteClient(*gateway.address) as client:
            client.subscribe(["health"])
            total = MAX_BUFFERED_EVENTS + 40
            last_seq = 0
            for index in range(total):
                last_seq = gateway.publish_event("health", "replica", {"index": index})
            assert wait_until(
                lambda: any(event.seq == last_seq for event in client._pool[0]._events)
            )
            events = client.events()
        assert len(events) <= MAX_BUFFERED_EVENTS
        # The newest events survive; the overflow dropped from the front.
        assert events[-1].seq == last_seq

    def test_only_the_first_pool_connection_subscribes(self, gateway):
        with RemoteClient(*gateway.address, pool_size=3) as client:
            client.subscribe(["alert"])
            gateway.publish_event("alert", "firing", {})
            event = client.wait_for_event(topic="alert", timeout=5.0)
            assert event.name == "firing"
        # Exactly one server-side subscription was taken for three connections.
        assert gateway.stats()["subscriptions"] == 1

"""Shared fixtures for the gateway tests: stub backends and server factories.

The wire/edge behaviours (framing, handshake, windows, drain) do not need a
real neural network behind them, so most tests run against a recording stub
that multiplies its input by two — fast enough for concurrency hammers.  The
end-to-end suite uses the real cluster + proxy stack instead.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Tuple

import numpy as np
import pytest

from repro.serve import GatewayServer


class EchoBackend:
    """Records every dispatch and returns ``sample * 2``; optionally slow or failing."""

    def __init__(self, delay: float = 0.0, fail_with: Optional[BaseException] = None) -> None:
        self.delay = delay
        self.fail_with = fail_with
        self.calls: List[Tuple[str, str, Optional[float]]] = []
        self._lock = threading.Lock()

    def predict(
        self,
        model_id: str,
        sample: np.ndarray,
        tenant: str = "default",
        deadline: Optional[float] = None,
    ) -> np.ndarray:
        with self._lock:
            self.calls.append((model_id, tenant, deadline))
        if self.delay:
            time.sleep(self.delay)
        if self.fail_with is not None:
            raise self.fail_with
        return np.asarray(sample) * 2.0

    def predict_batch(
        self,
        model_id: str,
        samples,
        tenant: str = "default",
        deadline: Optional[float] = None,
    ) -> List[np.ndarray]:
        return [
            self.predict(model_id, sample, tenant=tenant, deadline=deadline)
            for sample in samples
        ]


@pytest.fixture
def echo_backend() -> EchoBackend:
    return EchoBackend()


@pytest.fixture
def gateway(echo_backend: EchoBackend):
    server = GatewayServer(echo_backend, max_inflight=16, server_id="test-gateway")
    server.start()
    yield server
    server.stop()

"""Scale-churn races: drain-under-load and health admin ops vs deregister.

Two race families the elastic topology opens up:

* **drain under load** — ``remove_replica(drain=True)`` while submit hammers
  the router from many threads.  The contract: every future resolves, either
  with a result or a *typed* cluster error (never a raw ``KeyError`` /
  deadlock / lost future), and the router's ledger stays balanced —
  ``completed + failed + shed`` accounts for every accepted submission.
* **admin ops vs deregister** — ``mark_draining`` / ``mark_stopped`` /
  ``revive`` used to reach ``_record`` and raise ``KeyError`` when the
  replica had concurrently deregistered; they must now tolerate unknown ids
  exactly like ``heartbeat`` / ``record_*`` always did (and must not
  resurrect removed records).  Pinned by a hypothesis interleaving sweep
  plus a live-threads stress.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import model_factory
from repro.serve import (
    Batcher,
    ClusterRouter,
    ConsistentHashPolicy,
    DeadlineExceeded,
    FailoverExhausted,
    HealthMonitor,
    NoHealthyReplica,
    ReplicaUnavailable,
    ReplicaWorker,
    ServerOverloaded,
    ServerStopped,
)

from ..conftest import lenet_bundle

TYPED_ERRORS = (
    DeadlineExceeded,
    FailoverExhausted,
    NoHealthyReplica,
    ReplicaUnavailable,
    ServerOverloaded,
    ServerStopped,
)


def make_replica(replica_id: str) -> ReplicaWorker:
    return ReplicaWorker(
        replica_id,
        batcher=Batcher(max_batch_size=4, max_wait=0.005, padding="full"),
        num_workers=1,
    )


def make_cluster(replica_ids=("r0", "r1", "r2")) -> ClusterRouter:
    router = ClusterRouter(
        [make_replica(rid) for rid in replica_ids],
        placement=ConsistentHashPolicy(replication_factor=2, vnodes=32),
    )
    router.register(
        "lenet",
        lenet_bundle(),
        model_factory("lenet", in_channels=1, seed=3),
        metadata={"input_shape": [1, 28, 28], "input_dtype": "float32"},
    )
    return router


class TestDrainUnderLoad:
    def test_remove_replica_concurrent_with_submit_hammer(self):
        router = make_cluster()
        rng = np.random.default_rng(5)
        samples = rng.standard_normal((200, 1, 28, 28)).astype(np.float32)
        futures = []
        futures_lock = threading.Lock()
        start = threading.Barrier(9)  # 8 hammers + the churn thread

        def hammer(offset: int) -> None:
            start.wait()
            for index in range(offset, len(samples), 8):
                try:
                    future = router.submit("lenet", samples[index])
                except ServerStopped:  # post-stop stragglers are typed too
                    continue
                with futures_lock:
                    futures.append(future)

        def churn() -> None:
            start.wait()
            # Drain a live replica mid-hammer, then bring a fresh one in —
            # the exact sequence an autoscale scale-down + scale-up performs.
            removed = router.remove_replica("r1", drain=True)
            assert removed.replica_id == "r1"
            router.add_replica(make_replica("r1b"))

        with router:
            threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
            churner = threading.Thread(target=churn)
            for thread in threads:
                thread.start()
            churner.start()
            for thread in threads:
                thread.join()
            churner.join()
            results = 0
            for future in futures:
                error = future.exception(timeout=30)  # resolves: nothing lost
                if error is None:
                    output = future.result()
                    assert isinstance(output, np.ndarray) and output.shape == (10,)
                    results += 1
                else:
                    assert isinstance(error, TYPED_ERRORS), repr(error)
            assert results > 0  # the hammer did real work
        # Ledger: every accepted submission is accounted for exactly once.
        accounted = (
            router.counter("completed") + router.counter("failed") + router.counter("shed")
        )
        assert accounted == len(futures)
        assert "r1" not in router.replica_ids()
        assert "r1b" in router.replica_ids()


# ----------------------------------------------------------------------
# HealthMonitor admin ops racing deregister
# ----------------------------------------------------------------------
ADMIN_OPS = (
    "register",
    "deregister",
    "heartbeat",
    "dead_heartbeat",
    "record_success",
    "record_failure",
    "mark_draining",
    "mark_stopped",
    "revive",
)

ops_strategy = st.lists(
    st.tuples(st.sampled_from(ADMIN_OPS), st.sampled_from(["a", "b", "c"])),
    min_size=1,
    max_size=60,
)


class TestAdminOpsTolerateDeregister:
    @given(ops=ops_strategy)
    @settings(max_examples=200, deadline=None)
    def test_any_interleaving_never_raises(self, ops):
        # Sequential model of the race: whatever order register/deregister
        # and the admin ops interleave in, no op may raise — the only
        # allowed signal is the op quietly not applying.
        monitor = HealthMonitor(failure_threshold=2, heartbeat_timeout=5.0)
        registered = set()
        for op, replica_id in ops:
            if op == "register":
                if replica_id in registered:
                    with pytest.raises(ValueError):
                        monitor.register(replica_id)
                else:
                    monitor.register(replica_id)
                    registered.add(replica_id)
            elif op == "deregister":
                monitor.deregister(replica_id)
                registered.discard(replica_id)
            elif op == "heartbeat":
                monitor.heartbeat(replica_id)
            elif op == "dead_heartbeat":
                monitor.heartbeat(replica_id, alive=False)
            elif op == "record_success":
                monitor.record_success(replica_id)
            elif op == "record_failure":
                monitor.record_failure(replica_id)
            elif op == "mark_draining":
                monitor.mark_draining(replica_id)
            elif op == "mark_stopped":
                monitor.mark_stopped(replica_id)
            elif op == "revive":
                monitor.revive(replica_id)
            # Admin ops on unknown ids must not resurrect records.
            assert set(monitor.snapshot()) == registered

    def test_threaded_admin_stress(self):
        monitor = HealthMonitor(failure_threshold=2, heartbeat_timeout=5.0)
        errors: list = []
        stop = threading.Event()

        def membership() -> None:
            try:
                for _ in range(300):
                    monitor.register("flip")
                    monitor.deregister("flip")
            except Exception as error:  # noqa: BLE001 - the test asserts none occur
                errors.append(error)
            finally:
                stop.set()

        def admin() -> None:
            try:
                while not stop.is_set():
                    monitor.mark_draining("flip")
                    monitor.mark_stopped("flip")
                    monitor.revive("flip")
                    monitor.heartbeat("flip")
                    monitor.record_failure("flip")
                    monitor.record_success("flip")
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=membership)] + [
            threading.Thread(target=admin) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_revive_does_not_resurrect_deregistered(self):
        monitor = HealthMonitor()
        monitor.register("r0")
        monitor.deregister("r0")
        monitor.revive("r0")
        assert monitor.snapshot() == {}

"""ReplicaWorker: lifecycle, typed refusals, wrapper-future semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import model_factory
from repro.serve import Batcher, ReplicaUnavailable, ReplicaWorker

from ..conftest import lenet_bundle


def make_replica(replica_id: str = "r0") -> ReplicaWorker:
    replica = ReplicaWorker(
        replica_id, batcher=Batcher(max_batch_size=4, max_wait=0.005), num_workers=1
    )
    replica.registry.register(
        "lenet", lenet_bundle(), model_factory("lenet", in_channels=1, seed=3)
    )
    return replica


@pytest.fixture
def images() -> np.ndarray:
    return np.random.default_rng(5).standard_normal((4, 1, 28, 28)).astype(np.float32)


class TestLifecycle:
    def test_replica_id_must_be_non_empty(self):
        with pytest.raises(ValueError):
            ReplicaWorker("")

    def test_context_manager_serves_and_stops(self, images):
        replica = make_replica()
        with replica:
            future = replica.submit("lenet", images[0])
            assert future.result(timeout=30).shape == (10,)
        assert not replica.server.running

    def test_kill_is_idempotent_and_refuses_new_work(self, images):
        replica = make_replica()
        replica.kill()
        replica.kill()  # no-op
        assert not replica.alive
        with pytest.raises(ReplicaUnavailable, match="killed"):
            replica.predict("lenet", images[0])
        with pytest.raises(ReplicaUnavailable, match="killed"):
            replica.submit("lenet", images[0])
        assert replica.heartbeat()["alive"] is False

    def test_drain_finishes_queued_work_then_refuses(self, images):
        replica = make_replica()
        replica.start()
        futures = [replica.submit("lenet", sample) for sample in images]
        replica.drain()
        for future in futures:
            assert future.result(timeout=30).shape == (10,)
        assert replica.draining
        with pytest.raises(ReplicaUnavailable, match="draining"):
            replica.predict("lenet", images[0])
        assert replica.heartbeat()["alive"] is False  # draining: not routable

    def test_begin_drain_refuses_immediately(self, images):
        replica = make_replica()
        replica.begin_drain()
        with pytest.raises(ReplicaUnavailable, match="draining"):
            replica.submit("lenet", images[0])

    def test_start_after_stop_restores_service(self, images):
        replica = make_replica()
        replica.start()
        replica.stop()
        replica.start()
        try:
            assert replica.submit("lenet", images[0]).result(timeout=30).shape == (10,)
        finally:
            replica.stop()


class TestWrapperFutures:
    def test_inner_errors_pass_through_the_wrapper(self, images):
        replica = make_replica()
        with replica:
            future = replica.submit("ghost-model", images[0])
            with pytest.raises(KeyError):
                future.result(timeout=30)
        assert replica.in_flight == 0

    def test_failed_submit_leaves_no_outstanding_entry(self, images):
        replica = make_replica()  # never started: inner submit raises
        with pytest.raises(RuntimeError):
            replica.submit("lenet", images[0])
        assert replica.in_flight == 0

    def test_kill_fails_outstanding_wrappers_typed(self, images):
        replica = make_replica()
        replica.start()
        # enqueue without workers pulling fast enough to guarantee overlap is
        # not needed: even resolved inners are raced safely by _complete
        futures = [replica.submit("lenet", sample) for sample in images]
        replica.kill()
        outcomes = []
        for future in futures:
            try:
                outcomes.append(future.result(timeout=30))
            except ReplicaUnavailable:
                outcomes.append("failed-typed")
        assert all(
            isinstance(outcome, np.ndarray) or outcome == "failed-typed"
            for outcome in outcomes
        )

    def test_snapshot_reports_load_and_registry(self, images):
        replica = make_replica()
        replica.predict_batch("lenet", list(images))
        snapshot = replica.snapshot()
        assert snapshot["replica_id"] == "r0"
        assert snapshot["alive"] is True
        assert snapshot["in_flight"] == 0
        assert snapshot["registry"]["registered"] == 1
        assert snapshot["server"]["models"]["lenet"]["requests"] == len(images)
        assert replica.load() == 0

"""The full threat-model path against a cluster: publish, proxy, failover.

``CloudSession.publish`` targets the :class:`ClusterRouter` exactly like a
single registry (shard-aware publish), and the client-side
:class:`ExtractionProxy` queries the cluster unchanged — augmented inputs
out, stacked sub-network outputs back, secrets never serverside.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud import CloudSession
from repro.core import Amalgam, AmalgamConfig
from repro.data import make_mnist
from repro.models import LeNet
from repro.serve import (
    Batcher,
    ClusterRouter,
    ConsistentHashPolicy,
    ExtractionProxy,
    InferenceServer,
    ModelRegistry,
    ReplicaWorker,
)


def make_cluster_replica(replica_id: str) -> ReplicaWorker:
    return ReplicaWorker(
        replica_id,
        batcher=Batcher(max_batch_size=8, max_wait=0.005, padding="full"),
        num_workers=1,
    )


@pytest.fixture(scope="module")
def served_cluster_job():
    data = make_mnist(train_count=16, val_count=8, seed=1)
    config = AmalgamConfig(augmentation_amount=0.5, num_subnetworks=2, seed=13)
    job = Amalgam(config).prepare_image_job(LeNet(10, 1, 28, rng=np.random.default_rng(5)), data)
    router = ClusterRouter(
        [make_cluster_replica(f"r{index}") for index in range(3)],
        placement=ConsistentHashPolicy(replication_factor=2, vnodes=32),
    )
    entry = CloudSession.publish(job, router, "lenet-aug")
    return data, job, router, entry


class TestShardAwarePublish:
    def test_publish_targets_the_cluster(self, served_cluster_job):
        _, _, router, entry = served_cluster_job
        assert entry.model_id == "lenet-aug"
        holders = router.shard_map()["lenet-aug"]
        assert len(holders) == 2
        for replica_id in holders:
            replica_entry = router.replica(replica_id).registry.entry("lenet-aug")
            assert replica_entry.checksum == entry.checksum

    def test_replica_shards_carry_no_secrets(self, served_cluster_job):
        """Sharding must not widen the trust boundary: every replica holds
        only the public contract (augmented shape), never plan positions or
        the original sub-network index."""
        _, job, router, _ = served_cluster_job
        plan = job.secrets.dataset_plan
        for replica_id in router.shard_map()["lenet-aug"]:
            metadata = router.replica(replica_id).registry.entry("lenet-aug").metadata
            assert list(metadata["input_shape"]) == list(plan.augmented_shape)
            flattened = repr(sorted(metadata.items()))
            assert "positions" not in flattened
            assert "original" not in flattened


class TestProxyRoundTrips:
    def _reference(self, data, job):
        registry = ModelRegistry(capacity=2)
        CloudSession.publish(job, registry, "lenet-aug")
        return InferenceServer(registry, Batcher(max_batch_size=8, max_wait=0.005, padding="full"))

    def test_predict_batch_matches_single_server(self, served_cluster_job):
        data, job, router, _ = served_cluster_job
        samples = list(data.train.samples[:6])
        # Identical proxies (same seeds) so both paths augment identically.
        cluster_outputs = ExtractionProxy(job.secrets).predict_batch(router, "lenet-aug", samples)
        single_outputs = ExtractionProxy(job.secrets).predict_batch(
            self._reference(data, job), "lenet-aug", samples
        )
        for clustered, single in zip(cluster_outputs, single_outputs):
            np.testing.assert_array_equal(clustered, single)
            assert clustered.shape == (10,)

    def test_submit_round_trip_and_mid_run_kill(self, served_cluster_job):
        data, job, router, _ = served_cluster_job
        proxy = ExtractionProxy(job.secrets)
        samples = list(data.train.samples[:8])
        served_before = router.stats(model_id="lenet-aug")["requests"]
        with router:
            futures = [proxy.submit(router, "lenet-aug", sample) for sample in samples]
            router.replica(router.shard_map()["lenet-aug"][0]).kill()
            results = [future.result(timeout=30) for future in futures]
        for result in results:
            assert result.shape == (10,)
        stats = router.stats()
        assert stats["router"]["failed"] == 0
        # Failover is at-least-once for *compute* (the victim may finish a
        # batch whose futures were already failed over) but exactly-once for
        # results, so the merged count is >= the submitted count.
        assert stats["models"]["lenet-aug"]["requests"] >= served_before + len(samples)

    def test_cluster_sees_only_augmented_widths(self, served_cluster_job):
        data, job, router, _ = served_cluster_job
        proxy = ExtractionProxy(job.secrets)
        proxy.predict(router, "lenet-aug", data.train.samples[0])
        plan = job.secrets.dataset_plan
        for replica_id in router.replica_ids():
            validator_shape = (
                router.replica(replica_id).registry.entry("lenet-aug").metadata
                if replica_id in router.shard_map()["lenet-aug"]
                else None
            )
            if validator_shape is not None:
                assert tuple(validator_shape["input_shape"]) == plan.augmented_shape

"""ClusterRouter: sharded publish, failover (zero lost requests), SLA shedding,
membership changes, cluster-wide middleware, cross-replica stats merging."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.cloud import pack_model
from repro.models import model_factory
from repro.serve import (
    Batcher,
    ClusterRouter,
    ConsistentHashPolicy,
    ConsistentHashRing,
    DeadlineExceeded,
    FailoverExhausted,
    InferenceServer,
    LeastLoadedPolicy,
    ModelRegistry,
    ModelStats,
    NoHealthyReplica,
    RateLimiter,
    RateLimitExceeded,
    ReplicaWorker,
    ServeMiddleware,
    ServerStopped,
    Telemetry,
)

from ..conftest import lenet_bundle

VNODES = 32


def make_replica(replica_id: str, middleware=None, **batcher_kwargs) -> ReplicaWorker:
    batcher_kwargs.setdefault("max_batch_size", 8)
    batcher_kwargs.setdefault("max_wait", 0.005)
    batcher_kwargs.setdefault("padding", "full")  # bit-reproducible across replicas
    return ReplicaWorker(
        replica_id,
        batcher=Batcher(**batcher_kwargs),
        num_workers=1,
        middleware=middleware,
    )


def make_router(replica_ids=("r0", "r1", "r2"), middleware=None, **kwargs):
    kwargs.setdefault("placement", ConsistentHashPolicy(replication_factor=2, vnodes=VNODES))
    replicas = [make_replica(replica_id) for replica_id in replica_ids]
    return ClusterRouter(replicas, middleware=middleware, **kwargs)


def register_lenet(router: ClusterRouter, model_id: str = "lenet") -> None:
    router.register(model_id, lenet_bundle(), model_factory("lenet", in_channels=1, seed=3))


@pytest.fixture
def images() -> np.ndarray:
    return np.random.default_rng(11).standard_normal((8, 1, 28, 28)).astype(np.float32)


@pytest.fixture
def reference_outputs(images):
    """What a single bit-reproducible server answers for the fixture images."""
    registry = ModelRegistry(capacity=2)
    registry.register("lenet", lenet_bundle(), model_factory("lenet", in_channels=1, seed=3))
    server = InferenceServer(registry, Batcher(max_batch_size=8, padding="full"))
    return server.predict_batch("lenet", list(images))


class TestShardedCatalogue:
    def test_register_places_entries_on_replication_factor_owners(self):
        router = make_router()
        register_lenet(router)
        holders = router.shard_map()["lenet"]
        assert len(holders) == 2
        ring = ConsistentHashRing(["r0", "r1", "r2"], vnodes=VNODES)
        assert holders == ring.preference_list("lenet", count=2)

    def test_register_without_replicas_or_duplicate_id_raises(self):
        empty = ClusterRouter()
        with pytest.raises(NoHealthyReplica):
            register_lenet(empty)
        router = make_router()
        register_lenet(router)
        with pytest.raises(ValueError, match="already registered"):
            register_lenet(router)
        router.register(
            "lenet",
            lenet_bundle(),
            model_factory("lenet", in_channels=1, seed=3),
            replace=True,
        )

    def test_unregister_clears_every_holder(self):
        router = make_router()
        register_lenet(router)
        router.unregister("lenet")
        assert "lenet" not in router
        for replica_id in router.replica_ids():
            assert "lenet" not in router.replica(replica_id).registry

    def test_least_loaded_policy_replicates_everywhere(self):
        router = make_router(placement=LeastLoadedPolicy())
        register_lenet(router)
        assert router.shard_map()["lenet"] == ["r0", "r1", "r2"]


class TestSyncServing:
    def test_predict_batch_matches_single_server(self, images, reference_outputs):
        router = make_router()
        register_lenet(router)
        outputs = router.predict_batch("lenet", list(images))
        for output, expected in zip(outputs, reference_outputs):
            np.testing.assert_array_equal(output, expected)

    def test_failover_when_the_primary_is_killed(self, images, reference_outputs):
        router = make_router()
        register_lenet(router)
        primary = router.shard_map()["lenet"][0]
        # Freshen the health view first: the router still believes the primary
        # is routable when it dies, so the dispatch genuinely attempts it and
        # must fail over (a stale view would dodge the kill via check_health).
        router.check_health()
        router.replica(primary).kill()
        outputs = router.predict_batch("lenet", list(images))
        for output, expected in zip(outputs, reference_outputs):
            np.testing.assert_array_equal(output, expected)
        assert router.stats()["router"]["failovers"] >= 1
        assert router.health.snapshot()[primary]["total_failures"] >= 1

    def test_catalogue_miss_fails_over_to_an_owner(self, images, reference_outputs):
        # Non-owners raising KeyError must not poison health accounting.
        router = make_router(placement=LeastLoadedPolicy(), max_retries=2)
        register_lenet(router)
        router.replica("r0").registry.unregister("lenet")  # simulate a misroute
        for _ in range(4):  # whoever is tried first, an owner answers
            outputs = router.predict_batch("lenet", list(images[:2]))
            np.testing.assert_array_equal(outputs[0], reference_outputs[0])
        health = router.health.snapshot()
        assert all(record["state"] == "healthy" for record in health.values())

    def test_all_replicas_dead_raises_typed_errors(self, images):
        router = make_router(replica_ids=("r0", "r1"))
        register_lenet(router)
        router.check_health()  # believe both healthy, then kill them
        for replica_id in router.replica_ids():
            router.replica(replica_id).kill()
        with pytest.raises(FailoverExhausted):
            router.predict("lenet", images[0])
        router.check_health()  # monitor now knows both are gone
        with pytest.raises(NoHealthyReplica):
            router.predict("lenet", images[0])

    def test_expired_deadline_sheds_before_compute(self, images):
        router = make_router()
        register_lenet(router)
        with pytest.raises(DeadlineExceeded):
            router.predict("lenet", images[0], deadline=-0.1)
        stats = router.stats()
        assert stats["router"]["shed"] == 1
        # no replica spent compute on the shed request
        assert stats["models"]["lenet"]["requests"] == 0


class TestConcurrentServing:
    def test_submit_resolves_to_batch_outputs(self, images, reference_outputs):
        router = make_router()
        register_lenet(router)
        with router:
            futures = router.submit_many("lenet", list(images))
            results = [future.result(timeout=30) for future in futures]
        for result, expected in zip(results, reference_outputs):
            np.testing.assert_array_equal(result, expected)

    def test_killing_a_replica_mid_run_loses_zero_in_flight_requests(
        self, images, reference_outputs
    ):
        """The acceptance-bar failover test.

        The model's primary owner stalls its batch in a gate middleware, so
        requests are provably in flight on it when it is killed.  Every
        future must still resolve — re-dispatched to the surviving owner —
        with answers identical to a healthy single server's.
        """
        ring = ConsistentHashRing(["r0", "r1", "r2"], vnodes=VNODES)
        primary = ring.preference_list("lenet", count=1)[0]
        gate = threading.Event()
        in_flight = threading.Event()

        class Gate(ServeMiddleware):
            def on_batch(self, batch) -> None:
                in_flight.set()
                gate.wait(timeout=30)

        replicas = [
            make_replica(rid, middleware=[Gate()] if rid == primary else None)
            for rid in ("r0", "r1", "r2")
        ]
        router = ClusterRouter(
            replicas,
            placement=ConsistentHashPolicy(replication_factor=2, vnodes=VNODES),
            max_retries=2,
        )
        register_lenet(router)
        try:
            with router:
                futures = router.submit_many("lenet", list(images))
                assert in_flight.wait(timeout=30), "no batch reached the primary"
                router.replica(primary).kill()
                results = [future.result(timeout=30) for future in futures]
            for result, expected in zip(results, reference_outputs):
                np.testing.assert_array_equal(result, expected)
            stats = router.stats()
            assert stats["router"]["failovers"] >= 1
            assert stats["router"]["failed"] == 0
            assert stats["health"][primary]["state"] != "healthy"
        finally:
            gate.set()  # release the killed replica's stalled worker

    def test_submit_deadline_sheds_via_future(self, images):
        router = make_router()
        register_lenet(router)
        with router:
            future = router.submit("lenet", images[0], deadline=-1.0)
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=10)
        assert router.admission.stats()["shed"] == 1
        assert router.stats()["models"]["lenet"]["requests"] == 0

    def test_submit_lifecycle_errors_are_typed(self, images):
        router = make_router()
        register_lenet(router)
        with pytest.raises(RuntimeError, match="start\\(\\)"):
            router.submit("lenet", images[0])
        router.start()
        router.stop()
        with pytest.raises(ServerStopped, match="stopped"):
            router.submit("lenet", images[0])

    def test_submit_racing_a_full_stop_still_resolves_the_future(self, images):
        """Regression: submit()'s lifecycle check and its enqueue are not one
        atomic step.  If stop() runs to completion in that window — dispatcher
        joined, queue drained — the late-enqueued ticket must still be picked
        up (submit re-drains after noticing), never left as a forever-pending
        future."""
        router = make_router()
        register_lenet(router)
        router.start()
        real_submit = router.admission.submit

        def preempted_submit(*args, **kwargs):
            router.admission.submit = real_submit
            router.stop()  # the whole stop happens before our enqueue lands
            return real_submit(*args, **kwargs)

        router.admission.submit = preempted_submit
        future = router.submit("lenet", images[0])
        # Resolution (either a served result via the graceful-stopped replicas
        # or a typed failover error) is the contract; hanging is the bug.
        try:
            assert future.result(timeout=10).shape == (10,)
        except (FailoverExhausted, NoHealthyReplica, ServerStopped):
            pass

    def test_stop_drains_pending_requests(self, images):
        router = make_router()
        register_lenet(router)
        router.start()
        futures = router.submit_many("lenet", list(images))
        router.stop()
        for future in futures:
            assert future.result(timeout=30).shape == (10,)


class TestMembership:
    def test_join_resyncs_minimally(self):
        router = make_router()
        ids = [f"model-{index}" for index in range(16)]
        for model_id in ids:
            router.register(model_id, lenet_bundle(), model_factory("lenet", in_channels=1, seed=3))
        before = router.shard_map()
        joiner = make_replica("r3")
        router.add_replica(joiner)
        after = router.shard_map()
        moved = [model_id for model_id in ids if after[model_id] != before[model_id]]
        for model_id in ids:
            assert len(after[model_id]) == 2  # replication factor preserved
        # minimal movement: every reassignment involves the joiner taking over
        for model_id in moved:
            assert "r3" in after[model_id]
        assert len(moved) < len(ids), "join must not reshuffle the whole catalogue"

    def test_drain_removes_a_replica_without_dropping_service(self, images):
        router = make_router()
        register_lenet(router)
        victim = router.shard_map()["lenet"][0]
        removed = router.remove_replica(victim)
        assert removed.draining
        assert victim not in router.replica_ids()
        assert len(router.shard_map()["lenet"]) == 2  # re-homed to survivors
        assert router.predict("lenet", images[0]).shape == (10,)

    def test_duplicate_join_raises(self):
        router = make_router()
        with pytest.raises(ValueError):
            router.add_replica(make_replica("r0"))
        with pytest.raises(KeyError):
            router.remove_replica("ghost")

    def test_join_while_running_starts_the_replica(self, images):
        router = make_router(replica_ids=("r0", "r1"))
        register_lenet(router)
        with router:
            joiner = make_replica("r2")
            router.add_replica(joiner)
            assert joiner.server.running
            assert len(router) == 3
            assert router.replica("r2") is joiner
        assert not joiner.server.running  # stop() reaches joined members

    def test_constructor_validation_and_idempotent_lifecycle(self):
        with pytest.raises(ValueError):
            ClusterRouter(max_retries=-1)
        router = make_router()
        register_lenet(router)
        router.start()
        router.start()  # no-op
        router.stop()
        router.stop()  # no-op
        assert not router.running


class TestClusterMiddleware:
    def test_cluster_wide_rate_limit_spans_replicas(self, images):
        limiter = RateLimiter(rate=1.0, capacity=2, clock=lambda: 0.0)
        router = make_router(middleware=[limiter])
        register_lenet(router)
        router.predict("lenet", images[0])
        router.predict("lenet", images[1])
        with pytest.raises(RateLimitExceeded):
            router.predict("lenet", images[2])
        assert limiter.stats() == {"admitted": 2, "rejected": 1, "buckets": 1, "pruned": 0}

    def test_rejection_via_submit_future_and_telemetry_observes_it(self, images):
        limiter = RateLimiter(rate=1.0, capacity=1, clock=lambda: 0.0)
        router = make_router(middleware=[Telemetry(), limiter])
        register_lenet(router)
        with router:
            ok = router.submit("lenet", images[0])
            assert ok.result(timeout=30).shape == (10,)
            rejected = router.submit("lenet", images[1])
            with pytest.raises(RateLimitExceeded):
                rejected.result(timeout=10)
        stages = router.stats()["models"]["lenet"]["stages"]
        assert stages["request.total"]["count"] == 2
        assert stages["request.error"]["count"] == 1


class TestStatsMerging:
    def test_merged_percentiles_use_the_union_of_windows(self):
        fast = ModelStats(max_batch_size=4)
        slow = ModelStats(max_batch_size=4)
        fast.record_batch(4, 4, [0.001] * 4)
        slow.record_batch(4, 4, [0.101] * 4)
        merged = ModelStats.merged([fast, slow]).snapshot()
        assert merged["requests"] == 8
        assert merged["batches"] == 2
        # union percentiles straddle the two modes; an average-of-p50s would
        # sit at one of them instead
        assert 1.0 < merged["p50_latency_ms"] < 101.0
        assert merged["p95_latency_ms"] > 100.0

    def test_cluster_stats_aggregate_across_replicas(self, images):
        router = make_router()
        register_lenet(router)
        router.predict_batch("lenet", list(images))
        primary = router.shard_map()["lenet"][0]
        router.replica(primary).kill()
        router.predict_batch("lenet", list(images))  # served by the other owner
        merged = router.stats(model_id="lenet")
        assert merged["requests"] == 2 * len(images)
        per_replica = [
            router.replica(replica_id).server.stats().get("models", {}).get("lenet")
            for replica_id in router.replica_ids()
        ]
        served = [snap["requests"] for snap in per_replica if snap]
        assert sum(served) == 2 * len(images)
        assert len([count for count in served if count]) == 2, "two replicas served"
        assert merged["p95_latency_ms"] >= merged["p50_latency_ms"] > 0

    def test_full_snapshot_shape(self, images):
        router = make_router()
        register_lenet(router)
        router.predict("lenet", images[0])
        snapshot = router.stats()
        assert set(snapshot) == {
            "models",
            "replicas",
            "health",
            "admission",
            "router",
            "failover",
            "shard_map",
            "autoscaler",
        }
        assert snapshot["router"]["placement"] == "ConsistentHashPolicy"
        assert snapshot["failover"]["per_replica"], "served replica is accounted"
        attempts = sum(e["attempts"] for e in snapshot["failover"]["per_replica"].values())
        assert attempts >= 1
        assert snapshot["replicas"]["r0"]["server"]["queue_depth"] == 0

"""HealthMonitor: failure streaks, heartbeat windows, draining, revival."""

from __future__ import annotations

import pytest

from repro.serve.cluster import (
    DRAINING,
    HEALTHY,
    STOPPED,
    UNHEALTHY,
    HealthMonitor,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def monitor(clock: FakeClock) -> HealthMonitor:
    monitor = HealthMonitor(failure_threshold=3, heartbeat_timeout=5.0, clock=clock)
    for replica_id in ("r0", "r1"):
        monitor.register(replica_id)
    return monitor


class TestFailureStreaks:
    def test_consecutive_failures_mark_unhealthy(self, monitor):
        monitor.record_failure("r0")
        monitor.record_failure("r0")
        assert monitor.state("r0") == HEALTHY
        monitor.record_failure("r0")
        assert monitor.state("r0") == UNHEALTHY
        assert not monitor.is_routable("r0")
        assert monitor.routable_ids() == ["r1"]

    def test_one_success_resets_the_streak(self, monitor):
        monitor.record_failure("r0")
        monitor.record_failure("r0")
        monitor.record_success("r0")
        monitor.record_failure("r0")
        monitor.record_failure("r0")
        assert monitor.state("r0") == HEALTHY, "streak must reset on success"

    def test_success_revives_an_unhealthy_replica(self, monitor):
        for _ in range(3):
            monitor.record_failure("r0")
        assert monitor.state("r0") == UNHEALTHY
        monitor.record_success("r0")
        assert monitor.state("r0") == HEALTHY
        assert monitor.is_routable("r0")

    def test_signals_for_deregistered_replicas_are_ignored(self, monitor):
        monitor.deregister("r0")
        monitor.record_failure("r0")  # request was in flight during removal
        monitor.record_success("r0")
        assert "r0" not in monitor.snapshot()


class TestHeartbeats:
    def test_stale_heartbeat_stops_routing(self, monitor, clock):
        assert monitor.is_routable("r0")
        clock.advance(5.1)
        assert not monitor.is_routable("r0")
        monitor.heartbeat("r0")
        assert monitor.is_routable("r0")

    def test_dead_heartbeat_marks_stopped_and_alive_restores(self, monitor):
        monitor.heartbeat("r0", alive=False)
        assert monitor.state("r0") == STOPPED
        assert not monitor.is_routable("r0")
        monitor.heartbeat("r0", alive=True)  # restart observed
        assert monitor.state("r0") == HEALTHY

    def test_alive_heartbeat_readmits_unhealthy_as_a_probe(self, monitor):
        """UNHEALTHY must not be a trap: no traffic means no reviving success,
        so a heartbeat re-admits the replica — but keeps the failure streak,
        and one more failure benches it again immediately."""
        for _ in range(3):
            monitor.record_failure("r0")
        monitor.heartbeat("r0")
        assert monitor.state("r0") == HEALTHY
        monitor.record_failure("r0")
        assert monitor.state("r0") == UNHEALTHY, "streak survives the probe"
        monitor.heartbeat("r0")
        monitor.record_success("r0")
        monitor.record_failure("r0")
        assert monitor.state("r0") == HEALTHY, "a success clears the streak"

    def test_heartbeat_for_deregistered_replica_is_ignored(self, monitor):
        monitor.deregister("r0")
        monitor.heartbeat("r0")  # health check raced a removal: no KeyError
        monitor.heartbeat("r0", alive=False)
        assert "r0" not in monitor.snapshot()

    def test_check_polls_replica_objects(self, monitor):
        class FakeReplica:
            def __init__(self, alive: bool) -> None:
                self._alive = alive

            def heartbeat(self):
                return {"alive": self._alive}

        class CrashingReplica:
            def heartbeat(self):
                raise ConnectionError("boom")

        routable = monitor.check({"r0": FakeReplica(True), "r1": CrashingReplica()})
        assert routable == ["r0"]
        assert monitor.state("r1") == STOPPED


class TestAdministrativeStates:
    def test_draining_is_not_routable(self, monitor):
        monitor.mark_draining("r0")
        assert monitor.state("r0") == DRAINING
        assert monitor.routable_ids() == ["r1"]

    def test_revive_restores_routing(self, monitor, clock):
        monitor.mark_stopped("r0")
        clock.advance(10.0)  # heartbeat is stale too
        monitor.revive("r0")
        assert monitor.is_routable("r0")

    def test_unknown_replica_state_raises(self, monitor):
        with pytest.raises(KeyError):
            monitor.state("ghost")

    def test_admin_ops_tolerate_unknown_ids(self, monitor):
        # Autoscale churn makes admin ops race deregister routinely: a
        # mark/revive that loses the race is a no-op, never a KeyError, and
        # must not resurrect the record either.
        monitor.mark_draining("ghost")
        monitor.mark_stopped("ghost")
        monitor.revive("ghost")
        with pytest.raises(KeyError):
            monitor.state("ghost")

    def test_double_register_raises(self, monitor):
        with pytest.raises(ValueError):
            monitor.register("r0")

    def test_snapshot_reports_counters(self, monitor):
        monitor.record_failure("r0")
        monitor.record_success("r0")
        snapshot = monitor.snapshot()
        assert snapshot["r0"]["total_failures"] == 1
        assert snapshot["r0"]["total_successes"] == 1
        assert snapshot["r0"]["consecutive_failures"] == 0

"""LatencyTargetPolicy with a windowed p95 source.

The default signal path reads the router's rolling p95, which only decays by
*displacement* — hence the backlog gate that zeroes the signal on an idle
cluster.  A ``p95_source`` swaps that for a wall-clock-windowed percentile
from a :class:`WindowedSeriesStore`: the value ages out on its own, the
backlog gate is bypassed, and an empty window (``None``) reads as zero.
"""

from __future__ import annotations

from repro.serve import LatencyTargetPolicy, WindowedSeriesStore
from repro.serve.cluster.autoscale import SCALE_DOWN, SCALE_UP

from .test_autoscale import FakeClock, make_observation


def make_policy(clock, source=None, **overrides):
    kwargs = dict(
        target_p95_ms=50.0, breach_count=1, cooldown=0, clock=clock, p95_source=source
    )
    kwargs.update(overrides)
    return LatencyTargetPolicy(**kwargs)


class TestWindowedSignal:
    def test_source_value_overrides_the_observation(self):
        policy = make_policy(FakeClock(), source=lambda: 120.0)
        observation = make_observation(p95_ms=1.0, in_flight=3)
        assert policy.signal(observation) == 120.0
        assert policy.decide(observation).action == SCALE_UP

    def test_empty_window_reads_zero_and_bypasses_the_backlog_gate(self):
        # Backlog is non-zero, the router's rolling p95 is terrible — but the
        # windowed source has aged everything out, so the signal is zero.
        policy = make_policy(FakeClock(), source=lambda: None)
        busy_but_recovered = make_observation(p95_ms=400.0, queue_depth=7, in_flight=3)
        assert policy.signal(busy_but_recovered) == 0.0
        assert policy.decide(busy_but_recovered).action == SCALE_DOWN

    def test_default_path_is_unchanged_without_a_source(self):
        policy = make_policy(FakeClock())
        loaded = make_observation(p95_ms=80.0, in_flight=3)
        idle = make_observation(p95_ms=400.0)
        assert policy.signal(loaded) == 80.0
        assert policy.signal(idle) == 0.0  # the displacement-path backlog gate

    def test_describe_names_the_signal_source(self):
        clock = FakeClock()
        assert make_policy(clock).describe()["p95_source"] == "router"
        assert make_policy(clock, source=lambda: 1.0).describe()["p95_source"] == "windowed"


class TestAgainstALiveStore:
    def test_spike_fires_and_ages_out_by_wall_clock(self):
        clock = FakeClock()
        store = WindowedSeriesStore(interval=1.0, buckets=8, clock=clock)
        source = store.quantile_source("gateway.latency_ms", 0.95, window=4.0)
        policy = make_policy(clock, source=source)

        for _ in range(40):
            store.record_observation("gateway.latency_ms", 200.0)
        spike = make_observation(in_flight=5)
        assert policy.signal(spike) == 200.0
        assert policy.decide(spike).action == SCALE_UP

        # No new traffic; the spike ages past the window on its own.  The
        # displacement path would stay pinned at 200 here if backlog > 0.
        clock.advance(6.0)
        still_busy = make_observation(in_flight=5)
        assert policy.signal(still_busy) == 0.0
        assert policy.decide(still_busy).action == SCALE_DOWN

"""Cluster serving layer tests."""

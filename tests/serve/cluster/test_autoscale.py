"""Elastic topology: scaling policies, warm-before-cutover, the spike pin.

The acceptance scenario this file exists for: a queue-depth policy grows the
cluster 2 → 6 replicas under a submit spike, every request resolves with a
result (zero lost, ledger balanced), no replica serves a request before its
shard's bundles are warmed, and the topology drains back to 2 once idle.
"""

from __future__ import annotations

from concurrent.futures import wait

import numpy as np
import pytest

from repro.models import model_factory
from repro.serve import (
    Autoscaler,
    Batcher,
    ClusterRouter,
    ConsistentHashPolicy,
    LatencyTargetPolicy,
    QueueDepthPolicy,
    ReplicaWorker,
    autoscaler_from_spec,
)
from repro.serve.cluster.autoscale import (
    NOOP,
    SCALE_DOWN,
    SCALE_UP,
    Observation,
    ScalingPolicy,
    UnknownScalingPolicyError,
    build_scaling_policy,
    register_scaling_policy,
    registered_scaling_policies,
)
from repro.serve.middleware.config import ConfigError, StackDefinitionError, spec_from_toml

from ..conftest import lenet_bundle

VNODES = 32


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds: float):
        self.now += seconds


def make_observation(**overrides) -> Observation:
    values = dict(
        replica_count=2,
        queue_depth=0,
        in_flight=0,
        p95_ms=0.0,
        batch_fill=0.0,
        failovers=0,
        shed=0,
        timestamp=0.0,
    )
    values.update(overrides)
    return Observation(**values)


class WarmGuardReplica(ReplicaWorker):
    """Fails any request that reaches it before its bundle is instance-warm.

    Only autoscaler-created replicas use this subclass, so the assertion is
    exactly the warm-before-placement guarantee: if the executor ever let a
    request land on a cold shard, the request (or the sync call) fails and
    the zero-lost/ledger checks below catch it.
    """

    served_cold: list = []

    def _assert_warm(self, model_id: str) -> None:
        if model_id in self.registry and model_id not in self.registry.cached_ids():
            WarmGuardReplica.served_cold.append((self.replica_id, model_id))
            raise AssertionError(f"{self.replica_id} served '{model_id}' cold")

    def predict_batch(self, model_id, samples, tenant="default"):
        self._assert_warm(model_id)
        return super().predict_batch(model_id, samples, tenant=tenant)

    def submit(self, model_id, sample, tenant="default"):
        self._assert_warm(model_id)
        return super().submit(model_id, sample, tenant=tenant)


def make_replica(replica_id: str, cls=ReplicaWorker, **batcher_kwargs) -> ReplicaWorker:
    batcher_kwargs.setdefault("max_batch_size", 4)
    batcher_kwargs.setdefault("max_wait", 0.005)
    batcher_kwargs.setdefault("padding", "full")
    return cls(replica_id, batcher=Batcher(**batcher_kwargs), num_workers=1)


def make_cluster(replica_ids=("seed-0", "seed-1"), replication_factor=2, **kwargs):
    kwargs.setdefault(
        "placement", ConsistentHashPolicy(replication_factor=replication_factor, vnodes=VNODES)
    )
    return ClusterRouter([make_replica(rid) for rid in replica_ids], **kwargs)


def register_models(router: ClusterRouter, model_ids=("lenet",)) -> None:
    for index, model_id in enumerate(model_ids):
        router.register(
            model_id,
            lenet_bundle(seed=3 + index),
            model_factory("lenet", in_channels=1, seed=3 + index),
            metadata={"input_shape": [1, 28, 28], "input_dtype": "float32"},
        )


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
class TestQueueDepthPolicy:
    def test_band_must_have_width(self):
        with pytest.raises(ValueError):
            QueueDepthPolicy(high=2.0, low=2.0)

    def test_consecutive_breaches_required(self):
        policy = QueueDepthPolicy(high=4, low=1, breach_count=2, cooldown=0, clock=FakeClock())
        hot = make_observation(queue_depth=20)
        assert policy.decide(hot).action == NOOP  # first breach arms only
        assert policy.decide(hot).action == SCALE_UP

    def test_breach_streak_resets_inside_band(self):
        policy = QueueDepthPolicy(high=4, low=1, breach_count=2, cooldown=0, clock=FakeClock())
        hot = make_observation(queue_depth=20)
        calm = make_observation(queue_depth=4)  # 2/replica: inside the band
        assert policy.decide(hot).action == NOOP
        assert policy.decide(calm).action == NOOP  # streak reset
        assert policy.decide(hot).action == NOOP  # re-armed, not fired
        assert policy.decide(hot).action == SCALE_UP

    def test_scale_down_below_low_watermark(self):
        policy = QueueDepthPolicy(high=4, low=1, breach_count=1, cooldown=0, clock=FakeClock())
        assert policy.decide(make_observation(queue_depth=0)).action == SCALE_DOWN

    def test_cooldown_holds_noop_then_releases(self):
        clock = FakeClock()
        policy = QueueDepthPolicy(high=4, low=1, breach_count=1, cooldown=5.0, clock=clock)
        hot = make_observation(queue_depth=40)
        assert policy.decide(hot).action == SCALE_UP
        decision = policy.decide(hot)
        assert decision.action == NOOP and "cooldown" in decision.reason
        clock.advance(5.0)
        assert policy.decide(hot).action == SCALE_UP  # streak survived the hold

    def test_describe_carries_the_band(self):
        described = QueueDepthPolicy(high=8, low=1).describe()
        assert described["name"] == "queue_depth"
        assert described["high"] == 8.0 and described["low"] == 1.0


class TestLatencyTargetPolicy:
    def test_watermarks_derive_from_target(self):
        policy = LatencyTargetPolicy(target_p95_ms=100.0, scale_down_fraction=0.25)
        assert policy.high == 100.0 and policy.low == 25.0

    def test_scale_up_past_target(self):
        policy = LatencyTargetPolicy(
            target_p95_ms=50.0, breach_count=1, cooldown=0, clock=FakeClock()
        )
        slow = make_observation(p95_ms=80.0, in_flight=3)
        assert policy.decide(slow).action == SCALE_UP

    def test_idle_cluster_reads_zero_latency(self):
        # The rolling p95 window does not decay without traffic; an idle
        # cluster must still scale down instead of pinning at its peak.
        policy = LatencyTargetPolicy(
            target_p95_ms=50.0, breach_count=1, cooldown=0, clock=FakeClock()
        )
        idle = make_observation(p95_ms=400.0, queue_depth=0, in_flight=0)
        assert policy.signal(idle) == 0.0
        assert policy.decide(idle).action == SCALE_DOWN

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LatencyTargetPolicy(target_p95_ms=0)
        with pytest.raises(ValueError):
            LatencyTargetPolicy(target_p95_ms=10, scale_down_fraction=1.5)


class TestObservation:
    def test_backlog_sums_queue_and_in_flight(self):
        obs = make_observation(queue_depth=3, in_flight=5, replica_count=4)
        assert obs.backlog == 8
        assert obs.backlog_per_replica == 2.0


# ----------------------------------------------------------------------
# Placement preview
# ----------------------------------------------------------------------
class TestPreviewOwners:
    def test_preview_matches_committed_ownership(self):
        # Ring points are a pure function of replica id, so the scratch-ring
        # preview must agree exactly with what on_membership_change commits.
        policy = ConsistentHashPolicy(replication_factor=2, vnodes=VNODES)
        ids = ["r0", "r1", "r2", "r3"]
        models = [f"model-{i}" for i in range(12)]
        preview = policy.preview_owners(models, ids)
        policy.on_membership_change(ids)
        for model_id in models:
            committed = policy.ring.preference_list(model_id, count=2)
            assert preview[model_id] == committed

    def test_base_policy_replicates_everywhere(self):
        from repro.serve import PlacementPolicy

        preview = PlacementPolicy().preview_owners(["m1", "m2"], ["a", "b"])
        assert preview == {"m1": ["a", "b"], "m2": ["a", "b"]}


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class TestAutoscalerExecutor:
    def test_bounds_validation(self):
        router = make_cluster()
        policy = QueueDepthPolicy(clock=FakeClock())
        with pytest.raises(ValueError):
            Autoscaler(router, policy, make_replica, min_replicas=0)
        with pytest.raises(ValueError):
            Autoscaler(router, policy, make_replica, min_replicas=4, max_replicas=2)

    def test_scale_up_warms_assigned_bundles_before_join(self):
        router = make_cluster(replication_factor=2)
        register_models(router, ("lenet", "lenet-b", "lenet-c"))
        joined = []
        router.add_membership_listener(lambda event, rid: joined.append((event, rid)))
        scaler = Autoscaler(
            router,
            QueueDepthPolicy(clock=FakeClock()),
            make_replica,
            min_replicas=1,
            max_replicas=8,
            clock=FakeClock(),
        )
        (new_id,) = scaler.scale_up()
        assert joined == [("join", new_id)]
        replica = router.replica(new_id)
        plan = router.placement.preview_owners(router.model_ids(), router.replica_ids())
        assigned = [mid for mid, owners in plan.items() if new_id in owners]
        for model_id in assigned:
            assert model_id in replica.registry
            # Instance-warm, not merely registered: the LRU cache holds it.
            assert model_id in replica.registry.cached_ids()
        # Non-assigned models were not published (shard-resident caches).
        for model_id in set(router.model_ids()) - set(assigned):
            assert model_id not in replica.registry
        stats = scaler.stats()
        assert stats["warmed_bundles"] == len(assigned)
        assert stats["primed_forwards"] == len(assigned)

    def test_scale_down_migrates_sole_owned_bundles(self):
        # replication_factor=1: every model has exactly one owner, so the
        # victim's shard must move to a survivor before the drain.
        router = make_cluster(("seed-0", "seed-1", "seed-2"), replication_factor=1)
        models = ("lenet", "lenet-b", "lenet-c", "lenet-d")
        register_models(router, models)
        scaler = Autoscaler(
            router,
            QueueDepthPolicy(clock=FakeClock()),
            make_replica,
            min_replicas=1,
            clock=FakeClock(),
        )
        before = router.shard_map()
        assert all(len(owners) == 1 for owners in before.values())
        # Remove a replica that actually owns shards, so migration must run.
        victim = before[models[0]][0]
        victims_models = [mid for mid, owners in before.items() if owners == [victim]]
        assert victims_models
        removed = scaler.scale_down(victim)
        assert removed == victim
        assert victim not in router.replica_ids()
        after = router.shard_map()
        for model_id in models:
            assert len(after[model_id]) == 1, f"'{model_id}' lost its only shard"
        for model_id in victims_models:
            new_owner = after[model_id][0]
            assert new_owner != victim
            # The migrated shard is instance-warm on its new owner.
            assert model_id in router.replica(new_owner).registry.cached_ids()

    def test_scale_down_picks_least_loaded(self):
        router = make_cluster(("seed-0", "seed-1", "seed-2"))
        register_models(router)
        scaler = Autoscaler(
            router, QueueDepthPolicy(clock=FakeClock()), make_replica, clock=FakeClock()
        )
        # All idle: the id tie-break picks the lexicographically first.
        assert scaler.scale_down() == "seed-0"

    def test_step_clamps_at_bounds(self):
        clock = FakeClock()
        router = make_cluster(("seed-0", "seed-1"))
        register_models(router)
        policy = QueueDepthPolicy(high=4, low=1, breach_count=1, cooldown=0, clock=clock)
        scaler = Autoscaler(
            router, policy, make_replica, min_replicas=2, max_replicas=2, clock=clock
        )
        decision = scaler.step()  # idle → scale_down verdict, clamped at min
        assert decision.action == NOOP and "min_replicas" in decision.reason
        assert len(router) == 2
        assert scaler.stats()["clamped"] == 1

    def test_stats_ride_in_router_stats(self):
        router = make_cluster()
        register_models(router)
        scaler = Autoscaler(
            router, QueueDepthPolicy(clock=FakeClock()), make_replica, clock=FakeClock()
        )
        section = router.stats()["autoscaler"]
        assert section["replicas"] == 2
        assert section["policy"]["name"] == "queue_depth"
        assert section["last_decision"] is None
        scaler.step()
        assert router.stats()["autoscaler"]["cycles"] == 1

    def test_background_loop_runs_cycles(self):
        router = make_cluster()
        register_models(router)
        scaler = Autoscaler(
            router,
            QueueDepthPolicy(clock=FakeClock()),
            make_replica,
            interval=0.01,
            clock=FakeClock(),
        )
        import time as _time

        with scaler:
            assert scaler.running
            deadline = _time.monotonic() + 5.0
            while scaler.stats()["cycles"] < 3 and _time.monotonic() < deadline:
                _time.sleep(0.01)
        assert not scaler.running
        assert scaler.stats()["cycles"] >= 3


# ----------------------------------------------------------------------
# Declarative configuration
# ----------------------------------------------------------------------
SPEC = """
default_stack = "plain"

[stacks.plain]
middleware = [ { name = "telemetry" } ]

[cluster]
cluster_stack = "plain"

[cluster.autoscale]
policy = "queue_depth"
high = 6.0
low = 1.0
breach_count = 1
cooldown = 0.0
min_replicas = 2
max_replicas = 6
interval = 0.05
"""


class TestAutoscaleConfig:
    def test_spec_round_trip(self):
        spec = spec_from_toml(SPEC)
        assert spec.autoscale["policy"] == "queue_depth"
        assert spec.cluster == {"cluster_stack": "plain"}  # autoscale split out
        router = make_cluster()
        register_models(router)
        clock = FakeClock()
        scaler = autoscaler_from_spec(router, spec, make_replica, clock=clock)
        assert scaler.min_replicas == 2 and scaler.max_replicas == 6
        assert scaler.interval == 0.05
        assert scaler.policy.high == 6.0 and scaler.policy.breach_count == 1
        assert scaler.policy._clock is clock  # injected, so tests never sleep

    def test_spec_without_autoscale_returns_none(self):
        router = make_cluster()
        spec = spec_from_toml('[stacks.plain]\nmiddleware = [ { name = "telemetry" } ]\n')
        assert autoscaler_from_spec(router, spec, make_replica) is None

    def test_autoscale_table_requires_policy(self):
        with pytest.raises(StackDefinitionError):
            spec_from_toml("[cluster.autoscale]\nhigh = 4.0\n")

    def test_autoscale_values_must_be_scalars(self):
        with pytest.raises(StackDefinitionError):
            spec_from_toml('[cluster.autoscale]\npolicy = "queue_depth"\nhigh = [1, 2]\n')

    def test_unknown_policy_is_typed(self):
        with pytest.raises(UnknownScalingPolicyError):
            build_scaling_policy("who", {})

    def test_bad_policy_kwargs_are_config_errors(self):
        with pytest.raises(ConfigError):
            build_scaling_policy("latency_target", {"target_p95_ms": -1})
        with pytest.raises(ConfigError):
            build_scaling_policy("queue_depth", {"no_such_knob": 1})

    def test_register_custom_policy(self):
        class Never(ScalingPolicy):
            name = "never"

            def decide(self, observation):
                from repro.serve.cluster.autoscale import ScalingDecision

                return ScalingDecision(NOOP, "never scales")

        register_scaling_policy("never-test", Never, replace=True)
        try:
            assert "never-test" in registered_scaling_policies()
            policy = build_scaling_policy("never-test", {})
            assert policy.decide(make_observation()).action == NOOP
        finally:
            from repro.serve.cluster import autoscale as _mod

            _mod._POLICIES.pop("never-test", None)

    def test_duplicate_registration_needs_replace(self):
        with pytest.raises(ConfigError):
            register_scaling_policy("queue_depth", QueueDepthPolicy)


# ----------------------------------------------------------------------
# The acceptance pin: spike → 2 → 6 → drain → 2, zero lost requests
# ----------------------------------------------------------------------
class TestSpikeScenario:
    def test_spike_scales_out_serves_everything_and_drains_back(self):
        WarmGuardReplica.served_cold = []
        models = ("lenet", "lenet-b", "lenet-c")
        # Deliberately slow replicas (small batches, long waits) so the burst
        # outlives the scale-up phase and the backlog signal stays honest.
        # Seed replicas are plain workers (router.register publishes their
        # bundles without instance-warming — warm-up is the *autoscaler's*
        # guarantee, so only its replicas carry the cold-serve guard).
        router = ClusterRouter(
            [
                ReplicaWorker(rid, batcher=Batcher(max_batch_size=2, max_wait=0.02, padding="full"))
                for rid in ("seed-0", "seed-1")
            ],
            placement=ConsistentHashPolicy(replication_factor=2, vnodes=VNODES),
        )
        register_models(router, models)
        policy = QueueDepthPolicy(high=4.0, low=1.0, breach_count=1, cooldown=0.0)
        scaler = Autoscaler(
            router,
            policy,
            lambda rid: WarmGuardReplica(
                rid, batcher=Batcher(max_batch_size=2, max_wait=0.02, padding="full")
            ),
            min_replicas=2,
            max_replicas=6,
        )
        rng = np.random.default_rng(11)
        burst = rng.standard_normal((240, 1, 28, 28)).astype(np.float32)
        with router:
            futures = [
                router.submit(models[i % len(models)], sample) for i, sample in enumerate(burst)
            ]
            # Spike: every policy-driven step should grow the cluster while
            # the backlog holds; 2 → 6 takes four scale-up cycles.
            for _ in range(12):
                if len(router) == 6:
                    break
                scaler.step()
            peak = len(router)
            assert peak == 6, f"spike only reached {peak} replicas"
            done, pending = wait(futures, timeout=60)
            assert not pending, f"{len(pending)} requests never resolved"
            # Zero lost, zero errors: every future carries a real result.
            for future in futures:
                result = future.result()
                assert isinstance(result, np.ndarray) and result.shape == (10,)
            assert WarmGuardReplica.served_cold == []
            # Drain: idle observations walk the topology back to min.
            for _ in range(12):
                if len(router) == 2:
                    break
                scaler.step()
            assert len(router) == 2, f"drain stalled at {len(router)} replicas"
        # Ledger: completed accounts for every submitted request, nothing
        # failed, nothing shed — the elastic transitions dropped no work.
        assert router.counter("completed") == len(burst)
        assert router.counter("failed") == 0
        assert router.counter("shed") == 0
        stats = scaler.stats()
        assert stats["scale_up"] >= 4 and stats["scale_down"] >= 4
        assert [event["action"] for event in stats["events"]].count(SCALE_UP) >= 4

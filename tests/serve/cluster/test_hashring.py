"""Hypothesis property suite for the consistent-hash ring.

The two contracts the cluster's re-sharding story rests on:

* **balance** — with enough virtual nodes, 100+ model ids spread across the
  replicas within a generous bound (no replica starves or hoards);
* **minimal movement** — membership changes move exactly the keys they must:
  every key that changes owner when a replica joins moves *to* the joiner,
  and removing a replica only moves the keys it owned.
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.cluster import ConsistentHashRing, stable_hash

# Distinct printable model ids; 100+ keys per the satellite contract.
model_ids = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1,
        max_size=24,
    ),
    min_size=100,
    max_size=160,
    unique=True,
)

replica_counts = st.integers(min_value=2, max_value=6)


def build_ring(count: int, vnodes: int = 128) -> ConsistentHashRing:
    return ConsistentHashRing([f"replica-{index}" for index in range(count)], vnodes=vnodes)


@given(ids=model_ids, replicas=replica_counts)
@settings(max_examples=50, deadline=None)
def test_balance_within_bound(ids, replicas):
    """Each replica owns between 20% and 250% of its fair share."""
    ring = build_ring(replicas)
    counts = {node: 0 for node in ring.nodes()}
    for model_id in ids:
        counts[ring.lookup(model_id)] += 1
    fair = len(ids) / replicas
    assert sum(counts.values()) == len(ids)
    for node, owned in counts.items():
        assert owned >= 0.2 * fair, f"{node} starved: {owned} of fair {fair:.1f}"
        assert owned <= 2.5 * fair, f"{node} hoards: {owned} of fair {fair:.1f}"


@given(ids=model_ids, replicas=replica_counts)
@settings(max_examples=50, deadline=None)
def test_join_moves_keys_only_to_the_joiner(ids, replicas):
    """Adding a replica reassigns keys exclusively to the new replica."""
    ring = build_ring(replicas)
    before = {model_id: ring.lookup(model_id) for model_id in ids}
    ring.add("replica-joining")
    moved = 0
    for model_id in ids:
        after = ring.lookup(model_id)
        if after != before[model_id]:
            moved += 1
            assert after == "replica-joining", (
                f"'{model_id}' moved {before[model_id]} -> {after}, not to the joiner"
            )
    # Expected share is 1/(n+1); allow generous slack but forbid mass movement.
    assert moved <= 0.6 * len(ids), f"join moved {moved}/{len(ids)} keys"


@given(ids=model_ids, replicas=replica_counts)
@settings(max_examples=50, deadline=None)
def test_leave_moves_only_the_leavers_keys(ids, replicas):
    """Removing a replica leaves every other key's owner untouched."""
    ring = build_ring(replicas)
    before = {model_id: ring.lookup(model_id) for model_id in ids}
    leaver = ring.nodes()[0]
    ring.remove(leaver)
    for model_id in ids:
        after = ring.lookup(model_id)
        if before[model_id] != leaver:
            assert after == before[model_id], (
                f"'{model_id}' moved {before[model_id]} -> {after} though "
                f"only '{leaver}' left"
            )
        else:
            assert after != leaver


@given(ids=model_ids, replicas=replica_counts)
@settings(max_examples=25, deadline=None)
def test_preference_list_starts_at_owner_and_covers_all(ids, replicas):
    ring = build_ring(replicas)
    for model_id in ids[:20]:
        preference = ring.preference_list(model_id)
        assert preference[0] == ring.lookup(model_id)
        assert sorted(preference) == ring.nodes()
        assert ring.preference_list(model_id, count=2) == preference[:2]


def test_lookup_is_stable_across_instances():
    """Same membership -> same mapping, regardless of construction order."""
    forward = ConsistentHashRing(["a", "b", "c"], vnodes=64)
    backward = ConsistentHashRing(["c", "b", "a"], vnodes=64)
    for model_id in (f"model-{index}" for index in range(200)):
        assert forward.lookup(model_id) == backward.lookup(model_id)


def test_stable_hash_is_process_independent():
    # Pinned digest: a salted hash (like Python's builtin) would break ring
    # agreement across restarts, so the function must never drift.
    assert stable_hash("model-0") == int.from_bytes(
        hashlib.blake2b(b"model-0", digest_size=8).digest(), "big"
    )


def test_empty_ring_and_membership_errors():
    ring = ConsistentHashRing(vnodes=8)
    assert ring.preference_list("m") == []
    with pytest.raises(KeyError):
        ring.lookup("m")
    ring.add("only")
    with pytest.raises(ValueError):
        ring.add("only")
    with pytest.raises(KeyError):
        ring.remove("ghost")
    assert ring.lookup("anything") == "only"

"""AdmissionScheduler: priority/deadline ordering, shedding, bounded queue."""

from __future__ import annotations

import pytest

from repro.serve import ServerOverloaded
from repro.serve.cluster import AdmissionScheduler

from .test_health import FakeClock


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


def make_scheduler(clock, **kwargs) -> AdmissionScheduler:
    kwargs.setdefault("tenant_priorities", {"gold": 10, "silver": 5})
    return AdmissionScheduler(clock=clock, **kwargs)


class TestOrdering:
    def test_higher_priority_tenant_jumps_the_queue(self, clock):
        scheduler = make_scheduler(clock)
        scheduler.submit("m", "free", payload="first-in")
        scheduler.submit("m", "gold", payload="vip")
        scheduler.submit("m", "silver", payload="mid")
        order = [scheduler.next_ready()[0].payload for _ in range(3)]
        assert order == ["vip", "mid", "first-in"]

    def test_earliest_deadline_first_within_a_priority_band(self, clock):
        scheduler = make_scheduler(clock)
        scheduler.submit("m", "gold", deadline=9.0, payload="later")
        scheduler.submit("m", "gold", deadline=3.0, payload="urgent")
        scheduler.submit("m", "gold", payload="no-sla")  # inf deadline: last
        order = [scheduler.next_ready()[0].payload for _ in range(3)]
        assert order == ["urgent", "later", "no-sla"]

    def test_fifo_breaks_full_ties(self, clock):
        scheduler = make_scheduler(clock)
        for index in range(4):
            scheduler.submit("m", "gold", deadline=5.0, payload=index)
        assert [scheduler.next_ready()[0].payload for _ in range(4)] == [0, 1, 2, 3]

    def test_explicit_priority_overrides_tenant_map(self, clock):
        scheduler = make_scheduler(clock)
        scheduler.submit("m", "gold", payload="tenant-priority")
        scheduler.submit("m", "free", priority=99, payload="override")
        assert scheduler.next_ready()[0].payload == "override"


class TestShedding:
    def test_expired_ticket_pops_flagged_for_shedding(self, clock):
        scheduler = make_scheduler(clock)
        scheduler.submit("m", "free", deadline=1.0, payload="doomed")
        scheduler.submit("m", "free", payload="fine")
        clock.advance(2.0)
        ticket, expired = scheduler.next_ready()
        assert (ticket.payload, expired) == ("doomed", True)
        ticket, expired = scheduler.next_ready()
        assert (ticket.payload, expired) == ("fine", False)
        stats = scheduler.stats()
        assert stats["shed"] == 1
        assert stats["dispatched"] == 1

    def test_empty_queue_returns_none(self, clock):
        scheduler = make_scheduler(clock)
        assert scheduler.next_ready(timeout=0.01) is None


class TestBoundedQueue:
    def test_overflow_rejects_the_least_urgent(self, clock):
        evicted = []
        scheduler = make_scheduler(clock, max_pending=2)
        scheduler.on_evict = lambda ticket: evicted.append(ticket.payload)
        scheduler.submit("m", "gold", payload="keep-a")
        scheduler.submit("m", "free", payload="tail")
        # A newcomer more urgent than the tail evicts it...
        scheduler.submit("m", "silver", payload="keep-b")
        assert evicted == ["tail"]
        # ...but a newcomer no more urgent than the tail is itself rejected.
        with pytest.raises(ServerOverloaded):
            scheduler.submit("m", "free", payload="bounced")
        assert scheduler.pending == 2
        order = [scheduler.next_ready()[0].payload for _ in range(2)]
        assert order == ["keep-a", "keep-b"]
        assert scheduler.stats()["rejected"] == 2

    def test_drain_returns_everything_in_urgency_order(self, clock):
        scheduler = make_scheduler(clock)
        scheduler.submit("m", "free", payload="low")
        scheduler.submit("m", "gold", deadline=1.0, payload="expiring")
        scheduler.submit("m", "gold", payload="high")
        clock.advance(2.0)
        drained = scheduler.drain()
        assert [(t.payload, expired) for t, expired in drained] == [
            ("expiring", True),
            ("high", False),
            ("low", False),
        ]
        assert scheduler.pending == 0

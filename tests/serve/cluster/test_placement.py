"""Placement policies: ownership, candidate order, load awareness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.cluster import (
    ConsistentHashPolicy,
    LeastLoadedPolicy,
    PlacementPolicy,
    PowerOfTwoChoicesPolicy,
)


class StubReplica:
    """Just enough surface for the policies: an id and a load reading."""

    def __init__(self, replica_id: str, load: int = 0) -> None:
        self.replica_id = replica_id
        self._load = load

    def load(self) -> int:
        return self._load


def stubs(*loads: int) -> list:
    return [StubReplica(f"r{index}", load) for index, load in enumerate(loads)]


class TestDefaultPolicy:
    def test_replicates_everywhere_in_given_order(self):
        replicas = stubs(0, 0, 0)
        policy = PlacementPolicy()
        assert policy.candidates("m", replicas) == replicas
        assert policy.owners("m", replicas) == replicas


class TestConsistentHashPolicy:
    def test_owners_follow_the_ring_prefix(self):
        policy = ConsistentHashPolicy(replication_factor=2, vnodes=32)
        replicas = stubs(0, 0, 0)
        policy.on_membership_change([replica.replica_id for replica in replicas])
        owners = policy.owners("model-a", replicas)
        assert len(owners) == 2
        preference = policy.ring.preference_list("model-a")
        assert [owner.replica_id for owner in owners] == preference[:2]

    def test_candidates_walk_the_ring_restricted_to_routable(self):
        policy = ConsistentHashPolicy(replication_factor=1, vnodes=32)
        replicas = stubs(0, 0, 0)
        policy.on_membership_change([replica.replica_id for replica in replicas])
        preference = policy.ring.preference_list("model-a")
        routable = [replica for replica in replicas if replica.replica_id != preference[0]]
        candidates = policy.candidates("model-a", routable)
        # The failed primary is excluded; order still follows the ring.
        assert [candidate.replica_id for candidate in candidates] == [
            node for node in preference if node != preference[0]
        ]

    def test_membership_change_updates_the_ring(self):
        policy = ConsistentHashPolicy(vnodes=16)
        policy.on_membership_change(["r0", "r1"])
        assert policy.ring.nodes() == ["r0", "r1"]
        policy.on_membership_change(["r1", "r2"])
        assert policy.ring.nodes() == ["r1", "r2"]

    def test_replication_factor_validated(self):
        with pytest.raises(ValueError):
            ConsistentHashPolicy(replication_factor=0)


class TestLeastLoadedPolicy:
    def test_orders_by_load_then_id(self):
        replicas = stubs(5, 1, 3, 1)
        candidates = LeastLoadedPolicy().candidates("m", replicas)
        assert [candidate.replica_id for candidate in candidates] == ["r1", "r3", "r2", "r0"]


class TestPowerOfTwoChoicesPolicy:
    def test_winner_is_the_lighter_of_the_sampled_pair(self):
        rng = np.random.default_rng(0)
        policy = PowerOfTwoChoicesPolicy(rng=rng)
        replicas = stubs(9, 0, 5, 7)
        for _ in range(20):
            candidates = policy.candidates("m", replicas)
            assert len(candidates) == len(replicas)
            assert candidates[0].load() <= candidates[1].load()
            assert {candidate.replica_id for candidate in candidates} == {
                "r0",
                "r1",
                "r2",
                "r3",
            }

    def test_two_replicas_degenerates_to_least_loaded(self):
        policy = PowerOfTwoChoicesPolicy(rng=np.random.default_rng(1))
        replicas = stubs(4, 2)
        assert [c.replica_id for c in policy.candidates("m", replicas)] == ["r1", "r0"]

    def test_prefers_lighter_replicas_in_aggregate(self):
        policy = PowerOfTwoChoicesPolicy(rng=np.random.default_rng(7))
        replicas = stubs(100, 0, 100, 100)
        wins = sum(policy.candidates("m", replicas)[0].replica_id == "r1" for _ in range(200))
        # r1 wins whenever sampled (p = 1/2) and sometimes tops the sorted
        # rest otherwise never; expect ~100/200 with slack for sampling noise.
        assert wins > 60

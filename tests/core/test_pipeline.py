"""End-to-end tests of the Amalgam pipeline, including the training-equivalence invariant."""

import numpy as np
import pytest

from repro.core import (
    Amalgam,
    AmalgamConfig,
    ClassificationTrainer,
    LanguageModelTrainer,
)
from repro.data import DataLoader, make_mnist
from repro.models import LeNet, TextClassifier, TransformerLM
from repro.utils.rng import get_rng


class TestImagePipeline:
    def test_prepare_image_job_artifacts(self, mnist_tiny, amalgam_config):
        amalgam = Amalgam(amalgam_config)
        model = LeNet(10, 1, 28, rng=np.random.default_rng(3))
        job = amalgam.prepare_image_job(model, mnist_tiny)
        assert job.train_data.dataset.samples.shape[-1] == 42
        assert job.val_data.plan is job.train_data.plan
        assert job.metadata["task"] == "image-classification"
        assert job.augmented_model.num_subnetworks == 3

    def test_train_and_extract(self, mnist_tiny, amalgam_config):
        amalgam = Amalgam(amalgam_config)
        model = LeNet(10, 1, 28, rng=np.random.default_rng(3))
        job = amalgam.prepare_image_job(model, mnist_tiny)
        trained = amalgam.train_job(job, epochs=1, lr=0.05, batch_size=16)
        assert len(trained.training.history.get("train_loss")) == 1
        assert len(trained.training.history.get("val_accuracy")) == 1

        extraction = amalgam.extract(trained, lambda: LeNet(10, 1, 28))
        assert extraction.model.num_parameters() == model.num_parameters()

    def test_training_equivalence_invariant(self, amalgam_config):
        """Training the augmented model then extracting == training the original
        model directly, given identical initial weights and batch order."""
        data = make_mnist(train_count=48, val_count=8, seed=2)
        model = LeNet(10, 1, 28, rng=np.random.default_rng(5))
        initial_state = model.state_dict()

        amalgam = Amalgam(amalgam_config)
        job = amalgam.prepare_image_job(model, data)
        trained = amalgam.train_job(job, epochs=2, lr=0.05, batch_size=16, shuffle_seed=321)
        extracted = amalgam.extract(trained, lambda: LeNet(10, 1, 28)).model

        reference = LeNet(10, 1, 28, rng=np.random.default_rng(77))
        reference.load_state_dict(initial_state)
        trainer = ClassificationTrainer(reference, lr=0.05)
        trainer.fit(DataLoader(data.train, 16, shuffle=True, rng=get_rng(321)), epochs=2)

        for name, value in reference.state_dict().items():
            assert np.allclose(extracted.state_dict()[name], value, atol=1e-12), name

    def test_augmented_training_reduces_loss(self, mnist_tiny, amalgam_config):
        amalgam = Amalgam(amalgam_config)
        model = LeNet(10, 1, 28, rng=np.random.default_rng(3))
        job = amalgam.prepare_image_job(model, mnist_tiny)
        trained = amalgam.train_job(job, epochs=3, lr=0.05, batch_size=16)
        losses = trained.training.history.get("train_loss")
        assert losses[-1] < losses[0]


class TestTextPipeline:
    def test_text_job_end_to_end(self, agnews_tiny, amalgam_config):
        split, vocab = agnews_tiny
        amalgam = Amalgam(amalgam_config)
        model = TextClassifier(len(vocab), 16, 4, rng=np.random.default_rng(1))
        job = amalgam.prepare_text_job(model, split, vocab_size=len(vocab))
        assert job.metadata["task"] == "text-classification"
        trained = amalgam.train_job(job, epochs=2, lr=0.2, batch_size=16)
        extraction = amalgam.extract(trained, lambda: TextClassifier(len(vocab), 16, 4))
        assert extraction.model.num_parameters() == model.num_parameters()

    def test_text_training_equivalence(self, agnews_tiny):
        split, vocab = agnews_tiny
        config = AmalgamConfig(augmentation_amount=0.5, num_subnetworks=2, seed=17)
        model = TextClassifier(len(vocab), 16, 4, rng=np.random.default_rng(8))
        initial_state = model.state_dict()

        amalgam = Amalgam(config)
        job = amalgam.prepare_text_job(model, split, vocab_size=len(vocab))
        trained = amalgam.train_job(job, epochs=2, lr=0.2, batch_size=16, shuffle_seed=99)
        extracted = amalgam.extract(trained, lambda: TextClassifier(len(vocab), 16, 4)).model

        reference = TextClassifier(len(vocab), 16, 4, rng=np.random.default_rng(9))
        reference.load_state_dict(initial_state)
        trainer = ClassificationTrainer(reference, lr=0.2)
        trainer.fit(DataLoader(split.train, 16, shuffle=True, rng=get_rng(99)), epochs=2)

        for name, value in reference.state_dict().items():
            assert np.allclose(extracted.state_dict()[name], value, atol=1e-12), name


class TestLanguageModelPipeline:
    def test_lm_job_end_to_end(self, wikitext_tiny, amalgam_config):
        train, validation, vocab = wikitext_tiny
        amalgam = Amalgam(amalgam_config)
        model = TransformerLM(len(vocab), 16, 2, 1, 32, dropout=0.0,
                              rng=np.random.default_rng(2))
        job = amalgam.prepare_lm_job(model, train, validation, batch_rows=2, seq_len=10)
        assert job.metadata["task"] == "language-modelling"
        trained = amalgam.train_job(job, epochs=1, lr=0.005, optimizer="adam")
        assert trained.training.history.get("train_loss")
        assert trained.training.history.get("val_loss")
        extraction = amalgam.extract(
            trained, lambda: TransformerLM(len(vocab), 16, 2, 1, 32, dropout=0.0))
        assert extraction.model.num_parameters() == model.num_parameters()

    def test_lm_loss_decreases(self, wikitext_tiny, amalgam_config):
        train, _, vocab = wikitext_tiny
        amalgam = Amalgam(amalgam_config)
        model = TransformerLM(len(vocab), 16, 2, 1, 32, dropout=0.0,
                              rng=np.random.default_rng(2))
        job = amalgam.prepare_lm_job(model, train, batch_rows=2, seq_len=10)
        trained = amalgam.train_job(job, epochs=3, lr=0.01, optimizer="adam")
        losses = trained.training.history.get("train_loss")
        assert losses[-1] < losses[0]


class TestTrainers:
    def test_classification_trainer_invalid_optimizer(self, rng):
        with pytest.raises(ValueError):
            ClassificationTrainer(LeNet(10, 1, 28, rng=rng), optimizer="rmsprop")

    def test_classification_trainer_evaluate(self, mnist_tiny, rng):
        model = LeNet(10, 1, 28, rng=rng)
        trainer = ClassificationTrainer(model, lr=0.01)
        loss, accuracy = trainer.evaluate(DataLoader(mnist_tiny.validation, 8))
        assert loss > 0
        assert 0.0 <= accuracy <= 1.0

    def test_language_model_trainer(self, wikitext_tiny, rng):
        train, validation, vocab = wikitext_tiny
        from repro.data import batchify
        model = TransformerLM(len(vocab), 16, 2, 1, 32, dropout=0.0, rng=rng)
        trainer = LanguageModelTrainer(model, lr=0.01)
        result = trainer.fit(batchify(train.tokens, 2), seq_len=10, epochs=1,
                             val_batchified=batchify(validation.tokens, 2))
        assert result.history.get("train_loss")
        assert result.history.get("val_loss")

"""Tests for the NN Model Extractor and the transfer-learning helpers."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.core import (
    AmalgamConfig,
    Amalgam,
    DatasetAugmenter,
    ModelAugmenter,
    ModelExtractor,
    apply_pretrained,
    freeze_parameters,
    verify_pretrained_preserved,
)
from repro.models import LeNet, TextClassifier


@pytest.fixture
def augmented_lenet(mnist_tiny):
    config = AmalgamConfig(augmentation_amount=0.5, num_subnetworks=2, seed=7)
    plan = DatasetAugmenter(config).augment_images(mnist_tiny.train).plan
    model = LeNet(10, 1, 28, rng=np.random.default_rng(3))
    result = ModelAugmenter(config).augment_image_model(model, plan, num_classes=10)
    return model, result


class TestExtractor:
    def test_extraction_is_identity_before_training(self, augmented_lenet):
        model, result = augmented_lenet
        extractor = ModelExtractor(lambda: LeNet(10, 1, 28, rng=np.random.default_rng(99)))
        report = extractor.extract(result.augmented_model)
        for name, value in model.state_dict().items():
            assert np.array_equal(report.model.state_dict()[name], value)

    def test_extracted_model_has_original_parameter_count(self, augmented_lenet):
        model, result = augmented_lenet
        extractor = ModelExtractor(lambda: LeNet(10, 1, 28))
        report = extractor.extract(result.augmented_model)
        assert report.model.num_parameters() == model.num_parameters()

    def test_extracted_model_works_on_original_resolution(self, augmented_lenet, mnist_tiny):
        _, result = augmented_lenet
        extractor = ModelExtractor(lambda: LeNet(10, 1, 28))
        report = extractor.extract(result.augmented_model)
        out = report.model(Tensor(mnist_tiny.train.samples[:2].astype(float)))
        assert out.shape == (2, 10)

    def test_extraction_reflects_training_updates(self, augmented_lenet, mnist_tiny):
        model, result = augmented_lenet
        # One SGD step on the augmented model must show up in the extraction.
        optimizer = nn.optim.SGD(result.augmented_model.parameters(), lr=0.1)
        config = AmalgamConfig(augmentation_amount=0.5, num_subnetworks=2, seed=7)
        augmented = DatasetAugmenter(config).augment_images(mnist_tiny.train)
        batch = Tensor(augmented.dataset.samples[:8].astype(float))
        loss = result.augmented_model.loss(batch, mnist_tiny.train.labels[:8])
        loss.backward()
        optimizer.step()

        report = ModelExtractor(lambda: LeNet(10, 1, 28)).extract(result.augmented_model)
        changed = any(
            not np.array_equal(report.model.state_dict()[name], value)
            for name, value in model.state_dict().items()
        )
        assert changed

    def test_extract_state_strips_prefix(self, augmented_lenet):
        _, result = augmented_lenet
        state = ModelExtractor.extract_state(result.augmented_model)
        assert "conv1.weight" in state
        assert not any(name.startswith("subnetworks") for name in state)

    def test_extract_into_existing_model(self, augmented_lenet):
        model, result = augmented_lenet
        target = LeNet(10, 1, 28, rng=np.random.default_rng(55))
        ModelExtractor(lambda: LeNet(10, 1, 28)).extract_into(result.augmented_model, target)
        assert np.array_equal(target.conv1.weight.data, model.conv1.weight.data)

    def test_extraction_time_independent_of_amount(self, mnist_tiny):
        """Section 5.4: extraction is a constant-time state-dict copy."""
        times = []
        for amount in (0.25, 1.0):
            config = AmalgamConfig(augmentation_amount=amount, num_subnetworks=2, seed=1)
            plan = DatasetAugmenter(config).augment_images(mnist_tiny.train).plan
            model = LeNet(10, 1, 28, rng=np.random.default_rng(0))
            result = ModelAugmenter(config).augment_image_model(model, plan, num_classes=10)
            report = ModelExtractor(lambda: LeNet(10, 1, 28)).extract(result.augmented_model)
            times.append(report.elapsed)
        # Same order of magnitude: the larger amount must not blow up extraction.
        assert times[1] < times[0] * 20

    def test_extractor_rejects_foreign_model(self):
        from repro.core.model_augmenter import AugmentedModel
        wrapper = AugmentedModel([nn.Identity()], 0)
        with pytest.raises(ValueError):
            ModelExtractor.extract_state(wrapper)

    def test_copied_parameter_count_reported(self, augmented_lenet):
        model, result = augmented_lenet
        report = ModelExtractor(lambda: LeNet(10, 1, 28)).extract(result.augmented_model)
        assert report.copied_parameters >= model.num_parameters()


class TestBatchExtraction:
    """The serving download path: extraction from raw state dicts, many at a time."""

    def test_extract_from_state_matches_extract(self, augmented_lenet):
        _, result = augmented_lenet
        extractor = ModelExtractor(lambda: LeNet(10, 1, 28))
        via_model = extractor.extract(result.augmented_model)
        via_state = extractor.extract_from_state(
            result.augmented_model.state_dict(),
            result.augmented_model.original_index,
        )
        assert via_state.copied_parameters == via_model.copied_parameters
        for name, value in via_model.model.state_dict().items():
            assert np.array_equal(via_state.model.state_dict()[name], value)

    def test_extract_state_dict_strips_prefix(self, augmented_lenet):
        _, result = augmented_lenet
        state = ModelExtractor.extract_state_dict(
            result.augmented_model.state_dict(),
            result.augmented_model.original_index,
        )
        assert "conv1.weight" in state
        assert not any(name.startswith("subnetworks") for name in state)

    def test_extract_state_dict_rejects_wrong_index(self, augmented_lenet):
        _, result = augmented_lenet
        bad_index = result.augmented_model.num_subnetworks + 5
        with pytest.raises(ValueError):
            ModelExtractor.extract_state_dict(result.augmented_model.state_dict(), bad_index)

    def test_extract_many(self, mnist_tiny):
        models = []
        for seed in (1, 2):
            config = AmalgamConfig(augmentation_amount=0.5, num_subnetworks=2, seed=seed)
            plan = DatasetAugmenter(config).augment_images(mnist_tiny.train).plan
            model = LeNet(10, 1, 28, rng=np.random.default_rng(seed))
            result = ModelAugmenter(config).augment_image_model(model, plan, num_classes=10)
            models.append((model, result.augmented_model))
        extractor = ModelExtractor(lambda: LeNet(10, 1, 28))
        reports = extractor.extract_many(augmented for _, augmented in models)
        assert len(reports) == 2
        for (model, _), report in zip(models, reports):
            assert np.array_equal(report.model.conv1.weight.data, model.conv1.weight.data)

    def test_extract_many_states(self, mnist_tiny):
        config = AmalgamConfig(augmentation_amount=0.5, num_subnetworks=2, seed=4)
        plan = DatasetAugmenter(config).augment_images(mnist_tiny.train).plan
        model = LeNet(10, 1, 28, rng=np.random.default_rng(4))
        result = ModelAugmenter(config).augment_image_model(model, plan, num_classes=10)
        augmented = result.augmented_model
        extractor = ModelExtractor(lambda: LeNet(10, 1, 28))
        reports = extractor.extract_many_states(
            [augmented.state_dict(), augmented.state_dict()],
            [augmented.original_index, augmented.original_index],
        )
        assert len(reports) == 2
        with pytest.raises(ValueError):
            extractor.extract_many_states([augmented.state_dict()], [0, 1])


class TestTransferLearning:
    def test_apply_pretrained_loads_matching_parameters(self, rng):
        source = TextClassifier(30, 8, 4, rng=np.random.default_rng(1))
        target = TextClassifier(30, 8, 4, rng=np.random.default_rng(2))
        loaded = apply_pretrained(target, source.state_dict())
        assert "embedding.weight" in loaded
        assert np.array_equal(target.embedding.weight.data, source.embedding.weight.data)

    def test_apply_pretrained_skips_mismatched_shapes(self):
        source = TextClassifier(30, 8, 4, rng=np.random.default_rng(1))
        target = TextClassifier(30, 16, 4, rng=np.random.default_rng(2))
        loaded = apply_pretrained(target, source.state_dict())
        assert "embedding.weight" not in loaded

    def test_apply_pretrained_strict_raises_on_mismatch(self):
        source = TextClassifier(30, 8, 4, rng=np.random.default_rng(1))
        target = TextClassifier(30, 16, 4, rng=np.random.default_rng(2))
        with pytest.raises(KeyError):
            apply_pretrained(target, source.state_dict(), strict=True)

    def test_pretrained_weights_survive_augmentation(self, mnist_tiny):
        """Section 4.4: augmentation must not modify pre-trained values."""
        pretrained = LeNet(10, 1, 28, rng=np.random.default_rng(10))
        model = LeNet(10, 1, 28, rng=np.random.default_rng(11))
        loaded = apply_pretrained(model, pretrained.state_dict())

        config = AmalgamConfig(augmentation_amount=0.75, num_subnetworks=2, seed=3)
        amalgam = Amalgam(config)
        job = amalgam.prepare_image_job(model, mnist_tiny)
        check = verify_pretrained_preserved(job.augmented_model, pretrained.state_dict(),
                                            parameter_names=loaded)
        assert check.intact
        assert check.checked == len(loaded)

    def test_verify_detects_tampering(self, mnist_tiny):
        pretrained = LeNet(10, 1, 28, rng=np.random.default_rng(10))
        model = LeNet(10, 1, 28, rng=np.random.default_rng(11))
        apply_pretrained(model, pretrained.state_dict())
        config = AmalgamConfig(augmentation_amount=0.5, num_subnetworks=2, seed=3)
        job = Amalgam(config).prepare_image_job(model, mnist_tiny)
        # Corrupt one original parameter inside the augmented model.
        prefix = job.augmented_model.original_parameter_prefix()
        for name, parameter in job.augmented_model.named_parameters():
            if name == prefix + "conv1.weight":
                parameter.data += 1.0
        check = verify_pretrained_preserved(job.augmented_model, pretrained.state_dict())
        assert not check.intact

    def test_freeze_parameters(self, rng):
        model = TextClassifier(20, 4, 2, rng=rng)
        frozen = freeze_parameters(model, ["embedding.weight"])
        assert frozen == 1
        assert not model.embedding.weight.requires_grad
        assert model.classifier.weight.requires_grad

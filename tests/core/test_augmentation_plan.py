"""Tests for augmentation plans and the search-space accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ImageAugmentationPlan,
    TextAugmentationPlan,
    augmented_length,
    draw_insertion_positions,
    image_search_space,
    log10_binomial,
    placement_search_space,
    text_search_space,
)
from repro.core.search_space import SearchSpace, brute_force_attempts


class TestAugmentedLength:
    @pytest.mark.parametrize("original,amount,expected", [
        (32, 0.5, 48), (28, 0.25, 35), (28, 1.0, 56), (224, 0.25, 280),
        (20, 0.25, 25), (10, 0.1, 11), (32, 0.0, 32),
    ])
    def test_matches_paper_resolutions(self, original, amount, expected):
        assert augmented_length(original, amount) == expected


class TestDrawInsertionPositions:
    def test_positions_sorted_unique_in_range(self, rng):
        positions = draw_insertion_positions(10, 16, rng)
        assert len(positions) == 10
        assert np.all(np.diff(positions) > 0)
        assert positions.min() >= 0 and positions.max() < 16

    def test_rejects_shrinking(self, rng):
        with pytest.raises(ValueError):
            draw_insertion_positions(10, 5, rng)

    @given(st.integers(1, 40), st.integers(0, 40))
    @settings(max_examples=30, deadline=None)
    def test_property_strictly_increasing(self, original, extra):
        positions = draw_insertion_positions(original, original + extra,
                                             np.random.default_rng(original * 7 + extra))
        assert len(positions) == original
        assert np.all(np.diff(positions) > 0)


class TestPlans:
    def test_image_plan_validation_passes(self, rng):
        positions = np.stack([draw_insertion_positions(16, 25, rng) for _ in range(3)])
        plan = ImageAugmentationPlan((3, 4, 4), (3, 5, 5), positions, 0.25)
        plan.validate()
        assert plan.original_pixels == 16
        assert plan.augmented_pixels == 25
        assert plan.noise_pixels == 9

    def test_image_plan_noise_positions_are_complement(self, rng):
        positions = np.stack([draw_insertion_positions(4, 9, rng)])
        plan = ImageAugmentationPlan((1, 2, 2), (1, 3, 3), positions, 0.5)
        noise = plan.noise_positions()
        combined = np.sort(np.concatenate([positions[0], noise[0]]))
        assert np.array_equal(combined, np.arange(9))

    def test_image_plan_rejects_channel_change(self, rng):
        positions = np.stack([draw_insertion_positions(4, 9, rng)])
        plan = ImageAugmentationPlan((1, 2, 2), (2, 3, 3), positions, 0.5)
        with pytest.raises(ValueError):
            plan.validate()

    def test_image_plan_rejects_unsorted_positions(self):
        plan = ImageAugmentationPlan((1, 2, 2), (1, 3, 3),
                                     np.array([[3, 1, 2, 5]]), 0.5)
        with pytest.raises(ValueError):
            plan.validate()

    def test_image_plan_rejects_out_of_range(self):
        plan = ImageAugmentationPlan((1, 2, 2), (1, 3, 3),
                                     np.array([[0, 1, 2, 99]]), 0.5)
        with pytest.raises(ValueError):
            plan.validate()

    def test_text_plan_validation(self, rng):
        positions = draw_insertion_positions(20, 30, rng)[None, :]
        plan = TextAugmentationPlan(20, 30, positions, 0.5)
        plan.validate()
        assert plan.noise_tokens == 10
        noise = plan.noise_positions()
        assert np.array_equal(np.sort(np.concatenate([positions[0], noise[0]])), np.arange(30))

    def test_text_plan_rejects_wrong_row_length(self):
        plan = TextAugmentationPlan(5, 8, np.array([[0, 1, 2]]), 0.5)
        with pytest.raises(ValueError):
            plan.validate()


class TestSearchSpace:
    def test_log10_binomial_small_values(self):
        assert 10 ** log10_binomial(5, 2) == pytest.approx(10)
        assert 10 ** log10_binomial(25, 5) == pytest.approx(53130, rel=1e-9)
        assert log10_binomial(5, 0) == 0.0
        assert log10_binomial(5, 6) == float("-inf")

    def test_placement_search_space_formatting(self):
        space = placement_search_space(25, 5)
        assert str(space) == "5.31e4"

    @pytest.mark.parametrize("size,amount,expected_exponent", [
        (28, 0.25, 346),   # MNIST 25%  -> 1.00e346
        (28, 0.50, 524),   # MNIST 50%  -> 3.62e524
        (28, 0.75, 656),   # MNIST 75%  -> 8.57e656
        (28, 1.00, 763),   # MNIST 100% -> 1.22e764
        (32, 0.50, 685),   # CIFAR 50%  -> 1.21e686
        (32, 1.00, 998),   # CIFAR 100% -> 9.05e998
    ])
    def test_image_search_space_matches_table2(self, size, amount, expected_exponent):
        space = image_search_space(size, size, amount, channels=1)
        assert abs(space.log10 - expected_exponent) < 3.0

    @pytest.mark.parametrize("amount,expected", [
        (0.25, 53_130), (0.50, 30_045_015),
    ])
    def test_text_search_space_matches_table2_wikitext(self, amount, expected):
        space = text_search_space(20, amount)
        assert 10 ** space.log10 == pytest.approx(expected, rel=1e-6)

    def test_search_space_monotone_in_amount(self):
        spaces = [image_search_space(32, 32, amount).log10
                  for amount in (0.25, 0.5, 0.75, 1.0)]
        assert spaces == sorted(spaces)

    def test_joint_channel_space_is_larger(self):
        per_channel = image_search_space(16, 16, 0.5, per_channel=True)
        joint = image_search_space(16, 16, 0.5, per_channel=False, channels=3)
        assert joint.log10 == pytest.approx(3 * per_channel.log10)

    def test_search_space_multiplication(self):
        a, b = SearchSpace(10.0), SearchSpace(5.0)
        assert (a * b).log10 == 15.0

    def test_mantissa_exponent(self):
        mantissa, exponent = SearchSpace(4.5).mantissa_exponent
        assert exponent == 4
        assert mantissa == pytest.approx(10 ** 0.5)

    def test_value_overflows_to_inf(self):
        assert SearchSpace(500.0).value == float("inf")
        assert SearchSpace(2.0).value == pytest.approx(100.0)

    def test_brute_force_attempts_halves_space(self):
        space = SearchSpace(10.0)
        assert brute_force_attempts(space).log10 == pytest.approx(10.0 + np.log10(0.5))

    @given(st.integers(2, 60), st.floats(0.05, 2.0))
    @settings(max_examples=30, deadline=None)
    def test_text_space_nonnegative_and_monotone_in_length(self, length, amount):
        small = text_search_space(length, amount)
        large = text_search_space(length * 2, amount)
        assert small.log10 >= 0.0
        assert large.log10 >= small.log10

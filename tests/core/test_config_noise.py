"""Tests for AmalgamConfig and the noise generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AmalgamConfig, NoiseGenerator, NoiseSpec, NoiseType, default_noise


class TestAmalgamConfig:
    def test_defaults(self):
        config = AmalgamConfig()
        assert config.augmentation_amount == 0.5
        assert config.model_amount == 0.5
        assert config.noise.noise_type is NoiseType.RANDOM

    def test_model_amount_falls_back_to_dataset_amount(self):
        assert AmalgamConfig(augmentation_amount=0.75).model_amount == 0.75
        assert AmalgamConfig(augmentation_amount=0.75,
                             model_augmentation_amount=0.25).model_amount == 0.25

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            AmalgamConfig(augmentation_amount=-0.1)
        with pytest.raises(ValueError):
            AmalgamConfig(model_augmentation_amount=-1.0)

    def test_invalid_decoy_style_rejected(self):
        with pytest.raises(ValueError):
            AmalgamConfig(decoy_style="transformer")

    def test_resolve_subnetworks_fixed(self):
        config = AmalgamConfig(num_subnetworks=3)
        assert config.resolve_subnetworks(np.random.default_rng(0)) == 3

    def test_resolve_subnetworks_random_default_range(self):
        config = AmalgamConfig()
        counts = {config.resolve_subnetworks(np.random.default_rng(seed)) for seed in range(30)}
        assert counts.issubset({2, 3, 4})
        assert len(counts) > 1

    def test_resolve_subnetworks_invalid(self):
        with pytest.raises(ValueError):
            AmalgamConfig(num_subnetworks=0).resolve_subnetworks(np.random.default_rng(0))

    def test_noise_spec_string_coercion(self):
        spec = NoiseSpec(noise_type="gaussian")
        assert spec.noise_type is NoiseType.GAUSSIAN

    def test_user_noise_requires_pool(self):
        with pytest.raises(ValueError):
            NoiseSpec(noise_type=NoiseType.USER)

    def test_sigma_must_be_positive(self):
        with pytest.raises(ValueError):
            NoiseSpec(sigma=0.0)


class TestNoiseGenerator:
    def test_random_pixels_respect_range(self, rng):
        generator = default_noise()
        values = generator.sample_pixels(1000, rng, value_range=(0.2, 0.8))
        assert values.min() >= 0.2 and values.max() <= 0.8

    def test_gaussian_pixels_clipped_to_range(self, rng):
        generator = NoiseGenerator(NoiseSpec(noise_type=NoiseType.GAUSSIAN, sigma=5.0))
        values = generator.sample_pixels(500, rng, value_range=(0.0, 1.0))
        assert values.min() >= 0.0 and values.max() <= 1.0

    def test_laplace_pixels(self, rng):
        generator = NoiseGenerator(NoiseSpec(noise_type=NoiseType.LAPLACE, sigma=0.3))
        assert generator.sample_pixels(100, rng).shape == (100,)

    def test_user_pixels_come_from_pool(self, rng):
        pool = np.array([0.1, 0.5, 0.9])
        generator = NoiseGenerator(NoiseSpec(noise_type=NoiseType.USER, user_pool=pool))
        values = generator.sample_pixels(200, rng)
        assert set(np.unique(values)).issubset(set(pool))

    def test_random_tokens_within_vocab(self, rng):
        generator = default_noise()
        tokens = generator.sample_tokens(500, rng, vocab_size=37)
        assert tokens.dtype.kind == "i"
        assert tokens.min() >= 0 and tokens.max() < 37

    def test_gaussian_tokens_within_vocab(self, rng):
        generator = NoiseGenerator(NoiseSpec(noise_type=NoiseType.GAUSSIAN, sigma=2.0))
        tokens = generator.sample_tokens(500, rng, vocab_size=20)
        assert tokens.min() >= 0 and tokens.max() < 20

    def test_user_tokens_come_from_pool(self, rng):
        pool = np.array([3, 7, 11])
        generator = NoiseGenerator(NoiseSpec(noise_type=NoiseType.USER, user_pool=pool))
        tokens = generator.sample_tokens(100, rng, vocab_size=100)
        assert set(np.unique(tokens)).issubset({3, 7, 11})

    @given(st.integers(1, 500))
    @settings(max_examples=15, deadline=None)
    def test_sample_count_respected(self, count):
        generator = default_noise()
        assert generator.sample_pixels(count, np.random.default_rng(0)).shape == (count,)

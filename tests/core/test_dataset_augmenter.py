"""Tests for the Dataset Augmenter: geometry, value preservation, restoration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AmalgamConfig, DatasetAugmenter, NoiseSpec, NoiseType
from repro.data import make_mnist


@pytest.fixture
def augmenter():
    return DatasetAugmenter(AmalgamConfig(augmentation_amount=0.5, seed=3))


class TestImageAugmentation:
    def test_augmented_resolution_follows_paper_formula(self, augmenter, mnist_tiny):
        result = augmenter.augment_images(mnist_tiny.train)
        assert result.dataset.samples.shape == (32, 1, 42, 42)
        assert result.dataset.info.shape == (1, 42, 42)

    @pytest.mark.parametrize("amount,expected", [(0.25, 35), (0.5, 42), (0.75, 49), (1.0, 56)])
    def test_mnist_resolutions_match_table2(self, mnist_tiny, amount, expected):
        augmenter = DatasetAugmenter(AmalgamConfig(augmentation_amount=amount, seed=0))
        result = augmenter.augment_images(mnist_tiny.train)
        assert result.dataset.samples.shape[-1] == expected

    def test_original_pixels_preserved_at_plan_positions(self, augmenter, mnist_tiny):
        result = augmenter.augment_images(mnist_tiny.train)
        plan = result.plan
        flat_augmented = result.dataset.samples.reshape(32, 1, -1)
        flat_original = mnist_tiny.train.samples.reshape(32, 1, -1)
        assert np.array_equal(flat_augmented[:, 0, plan.channel_positions[0]],
                              flat_original[:, 0])

    def test_restore_is_exact_inverse(self, augmenter, mnist_tiny):
        result = augmenter.augment_images(mnist_tiny.train)
        restored = augmenter.restore_images(result)
        assert np.array_equal(restored, mnist_tiny.train.samples)

    def test_restore_inverse_for_multichannel(self, cifar10_tiny):
        augmenter = DatasetAugmenter(AmalgamConfig(augmentation_amount=0.75, seed=5))
        result = augmenter.augment_images(cifar10_tiny.train)
        assert result.dataset.samples.shape[-2:] == (56, 56)
        assert np.array_equal(augmenter.restore_images(result), cifar10_tiny.train.samples)

    def test_labels_unchanged(self, augmenter, mnist_tiny):
        result = augmenter.augment_images(mnist_tiny.train)
        assert np.array_equal(result.dataset.labels, mnist_tiny.train.labels)

    def test_channels_have_independent_positions_by_default(self, cifar10_tiny):
        augmenter = DatasetAugmenter(AmalgamConfig(augmentation_amount=0.5, seed=1))
        plan = augmenter.augment_images(cifar10_tiny.train).plan
        assert not np.array_equal(plan.channel_positions[0], plan.channel_positions[1])

    def test_shared_channel_positions_option(self, cifar10_tiny):
        augmenter = DatasetAugmenter(AmalgamConfig(augmentation_amount=0.5, seed=1,
                                                   shared_channel_positions=True))
        plan = augmenter.augment_images(cifar10_tiny.train).plan
        assert np.array_equal(plan.channel_positions[0], plan.channel_positions[2])

    def test_same_seed_same_plan(self, mnist_tiny):
        a = DatasetAugmenter(AmalgamConfig(augmentation_amount=0.5, seed=11))
        b = DatasetAugmenter(AmalgamConfig(augmentation_amount=0.5, seed=11))
        plan_a = a.augment_images(mnist_tiny.train).plan
        plan_b = b.augment_images(mnist_tiny.train).plan
        assert np.array_equal(plan_a.channel_positions, plan_b.channel_positions)

    def test_different_seed_different_plan(self, mnist_tiny):
        a = DatasetAugmenter(AmalgamConfig(augmentation_amount=0.5, seed=1))
        b = DatasetAugmenter(AmalgamConfig(augmentation_amount=0.5, seed=2))
        assert not np.array_equal(a.augment_images(mnist_tiny.train).plan.channel_positions,
                                  b.augment_images(mnist_tiny.train).plan.channel_positions)

    def test_noise_values_respect_value_range(self, mnist_tiny):
        augmenter = DatasetAugmenter(AmalgamConfig(augmentation_amount=1.0, seed=0))
        result = augmenter.augment_images(mnist_tiny.train)
        assert result.dataset.samples.min() >= 0.0
        assert result.dataset.samples.max() <= 1.0

    def test_user_noise_pixels(self, mnist_tiny):
        pool = np.array([0.123])
        config = AmalgamConfig(augmentation_amount=0.25, seed=0,
                               noise=NoiseSpec(noise_type=NoiseType.USER, user_pool=pool))
        result = DatasetAugmenter(config).augment_images(mnist_tiny.train)
        noise_positions = result.plan.noise_positions()[0]
        flat = result.dataset.samples.reshape(len(result.dataset.samples), 1, -1)
        noise_values = flat[:, 0, noise_positions]
        assert np.allclose(noise_values, np.float32(0.123))

    def test_dataset_size_grows(self, augmenter, mnist_tiny):
        result = augmenter.augment_images(mnist_tiny.train)
        assert result.dataset.nbytes() > mnist_tiny.train.nbytes()
        assert result.augmentation_time >= 0.0

    def test_search_space_attached(self, augmenter, mnist_tiny):
        result = augmenter.augment_images(mnist_tiny.train)
        assert abs(result.search_space.log10 - 524) < 2  # 3.62e524 in Table 2

    def test_rejects_text_dataset(self, augmenter, agnews_tiny):
        with pytest.raises(ValueError):
            augmenter.augment_images(agnews_tiny[0].train)

    def test_external_plan_reuse_for_validation_set(self, augmenter, mnist_tiny):
        train_result = augmenter.augment_images(mnist_tiny.train)
        val_result = augmenter.augment_images(mnist_tiny.validation, plan=train_result.plan)
        assert val_result.plan is train_result.plan
        assert val_result.dataset.samples.shape[-1] == 42

    @given(st.floats(0.1, 1.5))
    @settings(max_examples=10, deadline=None)
    def test_restore_inverse_property(self, amount):
        data = make_mnist(train_count=4, val_count=2, seed=0)
        augmenter = DatasetAugmenter(AmalgamConfig(augmentation_amount=amount, seed=2))
        result = augmenter.augment_images(data.train)
        assert np.array_equal(augmenter.restore_images(result), data.train.samples)


class TestTokenDatasetAugmentation:
    def test_sequence_length_grows(self, augmenter, agnews_tiny):
        split, _ = agnews_tiny
        result = augmenter.augment_token_dataset(split.train)
        assert result.dataset.samples.shape == (48, 48)  # 32 tokens +50%

    def test_original_tokens_preserved_in_order(self, augmenter, agnews_tiny):
        split, _ = agnews_tiny
        result = augmenter.augment_token_dataset(split.train)
        restored = augmenter.restore_token_dataset(result)
        assert np.array_equal(restored, split.train.samples)

    def test_noise_tokens_within_vocab(self, augmenter, agnews_tiny):
        split, _ = agnews_tiny
        result = augmenter.augment_token_dataset(split.train)
        assert result.dataset.samples.min() >= 0
        assert result.dataset.samples.max() < split.info.vocab_size

    def test_labels_preserved(self, augmenter, agnews_tiny):
        split, _ = agnews_tiny
        result = augmenter.augment_token_dataset(split.train)
        assert np.array_equal(result.dataset.labels, split.train.labels)

    def test_rejects_image_dataset(self, augmenter, mnist_tiny):
        with pytest.raises(ValueError):
            augmenter.augment_token_dataset(mnist_tiny.train)

    def test_search_space_matches_formula(self, augmenter, agnews_tiny):
        split, _ = agnews_tiny
        result = augmenter.augment_token_dataset(split.train)
        from repro.core import text_search_space
        assert result.search_space.log10 == pytest.approx(text_search_space(32, 0.5).log10)


class TestSequenceAugmentation:
    def test_block_structure(self, augmenter, wikitext_tiny):
        train, _, _ = wikitext_tiny
        result = augmenter.augment_sequence(train, batch_rows=4, seq_len=20)
        assert result.plan.original_length == 20
        assert result.plan.augmented_length == 30
        assert result.batches.shape[0] == 4
        assert result.batches.shape[1] % 30 == 0

    def test_restore_sequence_recovers_original_blocks(self, augmenter, wikitext_tiny):
        train, _, _ = wikitext_tiny
        from repro.data import batchify
        result = augmenter.augment_sequence(train, batch_rows=4, seq_len=20)
        restored = augmenter.restore_sequence(result)
        original_rows = batchify(train.tokens, 4)
        usable = (original_rows.shape[1] // 20) * 20
        assert np.array_equal(restored, original_rows[:, :usable])

    def test_noise_tokens_within_vocab(self, augmenter, wikitext_tiny):
        train, _, _ = wikitext_tiny
        result = augmenter.augment_sequence(train, batch_rows=2, seq_len=20)
        assert result.batches.max() < train.info.vocab_size

    def test_too_short_stream_raises(self, augmenter, wikitext_tiny):
        train, _, _ = wikitext_tiny
        with pytest.raises(ValueError):
            augmenter.augment_sequence(train, batch_rows=4, seq_len=100_000)

    def test_search_space_matches_paper_wikitext_entry(self, wikitext_tiny):
        train, _, _ = wikitext_tiny
        augmenter = DatasetAugmenter(AmalgamConfig(augmentation_amount=0.25, seed=0))
        result = augmenter.augment_sequence(train, batch_rows=2, seq_len=20)
        assert 10 ** result.search_space.log10 == pytest.approx(53130, rel=1e-6)

"""Tests for the NN Model Augmenter: parameter budgets, gradient isolation, obfuscation."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.core import (
    AmalgamConfig,
    DatasetAugmenter,
    ModelAugmenter,
    replace_first_conv,
    replace_first_embedding,
)
from repro.core.masked_conv import MaskedConv2d
from repro.core.masked_embedding import MaskedEmbedding
from repro.models import LeNet, TextClassifier, TransformerLM


@pytest.fixture
def image_setup(mnist_tiny):
    config = AmalgamConfig(augmentation_amount=0.5, num_subnetworks=2, seed=7)
    augmenter = DatasetAugmenter(config)
    augmented = augmenter.augment_images(mnist_tiny.train)
    model = LeNet(10, 1, 28, rng=np.random.default_rng(3))
    result = ModelAugmenter(config).augment_image_model(model, augmented.plan, num_classes=10)
    return config, augmented, model, result


class TestImageModelAugmentation:
    def test_parameter_overhead_tracks_amount(self, image_setup):
        _, _, _, result = image_setup
        assert result.parameter_overhead == pytest.approx(0.5, abs=0.05)

    @pytest.mark.parametrize("amount", [0.25, 0.75, 1.0])
    def test_parameter_overhead_for_other_amounts(self, mnist_tiny, amount):
        config = AmalgamConfig(augmentation_amount=amount, num_subnetworks=2, seed=1)
        plan = DatasetAugmenter(config).augment_images(mnist_tiny.train).plan
        model = LeNet(10, 1, 28, rng=np.random.default_rng(0))
        result = ModelAugmenter(config).augment_image_model(model, plan, num_classes=10)
        assert result.parameter_overhead == pytest.approx(amount, abs=0.07)

    def test_subnetwork_count(self, image_setup):
        _, _, _, result = image_setup
        assert result.augmented_model.num_subnetworks == 3  # original + 2 decoys

    def test_original_model_not_mutated(self, image_setup, mnist_tiny):
        _, _, model, result = image_setup
        # The user's model object keeps its own parameters; the augmented model
        # holds a copy, so training one does not silently change the other.
        original_ids = {id(p) for p in model.parameters()}
        augmented_ids = {id(p) for p in result.augmented_model.parameters()}
        assert original_ids.isdisjoint(augmented_ids)

    def test_original_weights_copied_exactly(self, image_setup):
        _, _, model, result = image_setup
        prefix = result.augmented_model.original_parameter_prefix()
        augmented_state = result.augmented_model.state_dict()
        for name, value in model.state_dict().items():
            assert np.array_equal(augmented_state[prefix + name], value)

    def test_forward_returns_one_output_per_subnetwork(self, image_setup):
        _, augmented, _, result = image_setup
        batch = Tensor(augmented.dataset.samples[:2].astype(float))
        outputs = result.augmented_model(batch)
        assert len(outputs) == 3
        assert all(out.shape == (2, 10) for out in outputs)

    def test_original_output_matches_original_model_on_original_data(self, image_setup,
                                                                      mnist_tiny):
        _, augmented, model, result = image_setup
        batch = Tensor(augmented.dataset.samples[:4].astype(float))
        augmented_out = result.augmented_model.original_output(batch)
        model.eval()
        result.augmented_model.eval()
        augmented_out = result.augmented_model.original_output(batch)
        original_out = model(Tensor(mnist_tiny.train.samples[:4].astype(float)))
        assert np.allclose(augmented_out.data, original_out.data, atol=1e-10)

    def test_decoy_losses_do_not_touch_original_gradients(self, image_setup, mnist_tiny):
        """The central claim: original-layer gradients under the combined loss
        equal the gradients of training the original model alone."""
        _, augmented, model, result = image_setup
        labels = mnist_tiny.train.labels[:4]
        batch = Tensor(augmented.dataset.samples[:4].astype(float))

        result.augmented_model.zero_grad()
        result.augmented_model.loss(batch, labels).backward()
        prefix = result.augmented_model.original_parameter_prefix()
        augmented_grads = {name[len(prefix):]: p.grad.copy()
                           for name, p in result.augmented_model.named_parameters()
                           if name.startswith(prefix) and p.grad is not None}

        model.zero_grad()
        original_batch = Tensor(mnist_tiny.train.samples[:4].astype(float))
        nn.functional.cross_entropy(model(original_batch), labels).backward()
        for name, parameter in model.named_parameters():
            assert np.allclose(parameter.grad, augmented_grads[name], atol=1e-9), name

    def test_decoys_receive_gradients_too(self, image_setup, mnist_tiny):
        _, augmented, _, result = image_setup
        labels = mnist_tiny.train.labels[:4]
        batch = Tensor(augmented.dataset.samples[:4].astype(float))
        result.augmented_model.zero_grad()
        result.augmented_model.loss(batch, labels).backward()
        prefix = result.augmented_model.original_parameter_prefix()
        decoy_grads = [p.grad for name, p in result.augmented_model.named_parameters()
                       if not name.startswith(prefix)]
        assert any(g is not None and np.abs(g).sum() > 0 for g in decoy_grads)

    def test_original_index_is_randomised_across_seeds(self, mnist_tiny):
        indices = set()
        for seed in range(6):
            config = AmalgamConfig(augmentation_amount=0.25, num_subnetworks=3, seed=seed)
            plan = DatasetAugmenter(config).augment_images(mnist_tiny.train).plan
            model = LeNet(10, 1, 28, rng=np.random.default_rng(0))
            result = ModelAugmenter(config).augment_image_model(model, plan, num_classes=10)
            indices.add(result.secrets.original_subnetwork_index)
        assert len(indices) > 1

    def test_secrets_describe_does_not_leak_index(self, image_setup):
        _, _, _, result = image_setup
        description = result.secrets.describe()
        assert "original_subnetwork_index" not in description
        assert description["subnetworks"] == 3

    def test_conv_decoy_style(self, mnist_tiny):
        config = AmalgamConfig(augmentation_amount=0.5, num_subnetworks=2, seed=2,
                               decoy_style="conv")
        plan = DatasetAugmenter(config).augment_images(mnist_tiny.train).plan
        model = LeNet(10, 1, 28, rng=np.random.default_rng(0))
        result = ModelAugmenter(config).augment_image_model(model, plan, num_classes=10)
        batch = Tensor(np.zeros((1, 1, 42, 42)))
        outputs = result.augmented_model(batch)
        assert len(outputs) == 3


class TestTextModelAugmentation:
    def test_text_classifier_augmentation(self, agnews_tiny):
        split, vocab = agnews_tiny
        config = AmalgamConfig(augmentation_amount=0.5, num_subnetworks=2, seed=5)
        plan = DatasetAugmenter(config).augment_token_dataset(split.train).plan
        model = TextClassifier(len(vocab), 16, 4, rng=np.random.default_rng(1))
        result = ModelAugmenter(config).augment_text_model(model, plan,
                                                           vocab_size=len(vocab), num_classes=4)
        assert result.parameter_overhead == pytest.approx(0.5, abs=0.15)
        augmented_tokens = np.zeros((2, plan.augmented_length), dtype=int)
        outputs = result.augmented_model(augmented_tokens)
        assert len(outputs) == 3
        assert outputs[0].shape == (2, 4)

    def test_lm_augmentation_loss_runs(self, wikitext_tiny):
        train, _, vocab = wikitext_tiny
        config = AmalgamConfig(augmentation_amount=0.5, num_subnetworks=2, seed=5)
        augmenter = DatasetAugmenter(config)
        augmented = augmenter.augment_sequence(train, batch_rows=2, seq_len=10)
        model = TransformerLM(len(vocab), 16, 2, 1, 32, dropout=0.0,
                              rng=np.random.default_rng(1))
        result = ModelAugmenter(config).augment_language_model(model, augmented.plan,
                                                               vocab_size=len(vocab))
        block = augmented.batches[:, : augmented.block_length]
        loss = result.augmented_model.loss(block)
        assert loss.item() > 0
        loss.backward()

    def test_lm_original_gradients_unaffected_by_decoys(self, wikitext_tiny):
        train, _, vocab = wikitext_tiny
        config = AmalgamConfig(augmentation_amount=0.5, num_subnetworks=2, seed=9)
        augmenter = DatasetAugmenter(config)
        augmented = augmenter.augment_sequence(train, batch_rows=2, seq_len=10)
        model = TransformerLM(len(vocab), 16, 2, 1, 32, dropout=0.0,
                              rng=np.random.default_rng(1))
        result = ModelAugmenter(config).augment_language_model(model, augmented.plan,
                                                               vocab_size=len(vocab))
        block = augmented.batches[:, : augmented.block_length]

        result.augmented_model.zero_grad()
        result.augmented_model.loss(block).backward()
        prefix = result.augmented_model.original_parameter_prefix()
        augmented_grads = {name[len(prefix):]: p.grad.copy()
                           for name, p in result.augmented_model.named_parameters()
                           if name.startswith(prefix) and p.grad is not None}

        original_block = augmenter.restore_sequence(augmented)[:, :10]
        model.zero_grad()
        model.loss(original_block[:, :-1], original_block[:, 1:]).backward()
        for name, parameter in model.named_parameters():
            if parameter.grad is None:
                continue
            assert np.allclose(parameter.grad, augmented_grads[name], atol=1e-9), name


class TestFirstLayerSurgery:
    def test_replace_first_conv(self, rng):
        model = LeNet(10, 1, 28, rng=rng)
        positions = np.stack([np.sort(np.random.default_rng(0).choice(42 * 42, 28 * 28,
                                                                      replace=False))])
        replaced = replace_first_conv(model, positions, (28, 28))
        assert isinstance(model.conv1, MaskedConv2d)
        assert model.conv1.conv is replaced
        out = model(Tensor(np.zeros((1, 1, 42, 42))))
        assert out.shape == (1, 10)

    def test_replace_first_conv_without_conv_raises(self, rng):
        model = nn.Sequential(nn.Linear(4, 2, rng=rng))
        with pytest.raises(ValueError):
            replace_first_conv(model, np.zeros((1, 4), dtype=int), (2, 2))

    def test_replace_first_embedding(self, rng):
        model = TextClassifier(50, 8, 4, rng=rng)
        replaced = replace_first_embedding(model, np.array([0, 2, 4, 6]))
        assert isinstance(model.embedding, MaskedEmbedding)
        assert model.embedding.embedding is replaced
        out = model(np.zeros((2, 8), dtype=int))
        assert out.shape == (2, 4)

    def test_replace_first_embedding_without_embedding_raises(self, rng):
        model = nn.Sequential(nn.Linear(4, 2, rng=rng))
        with pytest.raises(ValueError):
            replace_first_embedding(model, np.array([0]))


class TestAugmentedModelAPI:
    def test_invalid_task_rejected(self):
        from repro.core.model_augmenter import AugmentedModel
        with pytest.raises(ValueError):
            AugmentedModel([nn.Identity()], 0, task="regression")

    def test_original_parameter_prefix_format(self, image_setup):
        _, _, _, result = image_setup
        prefix = result.augmented_model.original_parameter_prefix()
        assert prefix.startswith("subnetworks.")
        assert prefix.endswith(".body.")

"""Tests for the custom (masked) convolution and embedding layers (Equations 1 and 2)."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.core import (
    AmalgamConfig,
    DatasetAugmenter,
    InputSelector,
    MaskedConv2d,
    MaskedEmbedding,
    TokenSelector,
)
from repro.core.augmentation_plan import draw_insertion_positions


class TestInputSelector:
    def test_recovers_original_image_from_augmented(self, mnist_tiny):
        augmenter = DatasetAugmenter(AmalgamConfig(augmentation_amount=0.5, seed=3))
        result = augmenter.augment_images(mnist_tiny.train)
        selector = InputSelector(result.plan.channel_positions, (28, 28))
        selected = selector(Tensor(result.dataset.samples.astype(float)))
        assert np.allclose(selected.data, mnist_tiny.train.samples)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            InputSelector(np.zeros((2, 5), dtype=int), (2, 2))
        with pytest.raises(ValueError):
            InputSelector(np.zeros(5, dtype=int), (1, 5))

    def test_channel_count_mismatch_raises(self, rng):
        selector = InputSelector(np.stack([np.arange(4)]), (2, 2))
        with pytest.raises(ValueError):
            selector(Tensor(np.zeros((1, 3, 3, 3))))

    def test_gradients_flow_to_selected_positions_only(self, rng):
        positions = np.stack([np.array([0, 2, 6, 8])])
        selector = InputSelector(positions, (2, 2))
        x = Tensor(rng.random((1, 1, 3, 3)), requires_grad=True)
        selector(x).sum().backward()
        grad_flat = x.grad.reshape(-1)
        assert np.allclose(grad_flat[[0, 2, 6, 8]], 1.0)
        assert np.allclose(grad_flat[[1, 3, 4, 5, 7]], 0.0)


class TestMaskedConv2d:
    def test_equivalent_to_plain_conv_on_original_input(self, rng):
        """Equation 1: skipping augmented pixels == convolving the original image."""
        original = rng.random((2, 3, 8, 8))
        augmented_side = 12
        positions = np.stack([
            draw_insertion_positions(64, augmented_side * augmented_side,
                                     np.random.default_rng(c))
            for c in range(3)
        ])
        augmented = rng.random((2, 3, augmented_side, augmented_side))
        flat = augmented.reshape(2, 3, -1)
        for channel in range(3):
            flat[:, channel, positions[channel]] = original.reshape(2, 3, -1)[:, channel]

        plain = nn.Conv2d(3, 4, 3, padding=1, rng=np.random.default_rng(7))
        masked = MaskedConv2d.from_conv(plain, positions, (8, 8))
        out_masked = masked(Tensor(augmented))
        out_plain = plain(Tensor(original))
        assert np.allclose(out_masked.data, out_plain.data)

    def test_from_conv_shares_parameters(self, rng):
        conv = nn.Conv2d(1, 2, 3, rng=rng)
        positions = np.stack([np.arange(16)])
        masked = MaskedConv2d.from_conv(conv, positions, (4, 4))
        assert masked.conv.weight is conv.weight

    def test_standalone_construction_and_forward(self, rng):
        positions = np.stack([np.sort(rng.choice(36, 16, replace=False))])
        masked = MaskedConv2d(1, 4, 3, positions, (4, 4), padding=1, rng=rng)
        out = masked(Tensor(rng.random((2, 1, 6, 6))))
        assert out.shape == (2, 4, 4, 4)

    def test_gradients_reach_shared_weights(self, rng):
        conv = nn.Conv2d(1, 2, 3, padding=1, rng=rng)
        positions = np.stack([np.sort(rng.choice(25, 16, replace=False))])
        masked = MaskedConv2d.from_conv(conv, positions, (4, 4))
        masked(Tensor(rng.random((1, 1, 5, 5)))).sum().backward()
        assert conv.weight.grad is not None

    def test_skipped_positions_are_complement(self, rng):
        positions = np.stack([np.array([0, 1, 2, 3])])
        masked = MaskedConv2d(1, 1, 1, positions, (2, 2), rng=rng)
        # All kept -> nothing skipped beyond the range of kept positions.
        assert masked.selector.positions.shape == (1, 4)


class TestMaskedEmbedding:
    def test_equivalent_to_plain_embedding_on_original_tokens(self, rng):
        vocab, dim = 30, 8
        original = rng.integers(0, vocab, (4, 10))
        positions = draw_insertion_positions(10, 15, rng)
        augmented = rng.integers(0, vocab, (4, 15))
        augmented[:, positions] = original

        plain = nn.Embedding(vocab, dim, rng=np.random.default_rng(3))
        masked = MaskedEmbedding.from_embedding(plain, positions)
        assert np.allclose(masked(augmented).data, plain(original).data)

    def test_from_embedding_shares_weight(self, rng):
        embedding = nn.Embedding(10, 4, rng=rng)
        masked = MaskedEmbedding.from_embedding(embedding, np.arange(5))
        assert masked.embedding.weight is embedding.weight

    def test_standalone_construction(self, rng):
        masked = MaskedEmbedding(20, 6, positions=np.array([0, 2, 4]), rng=rng)
        out = masked(np.zeros((2, 6), dtype=int))
        assert out.shape == (2, 3, 6)

    def test_kept_positions_property(self, rng):
        masked = MaskedEmbedding(20, 6, positions=np.array([1, 3, 5]), rng=rng)
        assert np.array_equal(masked.kept_positions, [1, 3, 5])

    def test_token_selector_works_on_tensor_and_array(self):
        selector = TokenSelector(np.array([0, 2]))
        array = np.array([[10, 11, 12]])
        assert np.array_equal(selector(array), [[10, 12]])
        assert np.array_equal(selector(Tensor(array.astype(float))), [[10.0, 12.0]])

    def test_gradients_reach_embedding_weight(self, rng):
        masked = MaskedEmbedding(15, 4, positions=np.array([0, 1, 2]), rng=rng)
        masked(np.array([[3, 4, 5, 6, 7]])).sum().backward()
        assert masked.embedding.weight.grad is not None

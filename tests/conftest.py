"""Shared fixtures for the test suite.

Everything is intentionally tiny so the whole suite runs on CPU in a couple of
minutes; the heavier, paper-scale configurations live in ``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AmalgamConfig
from repro.data import make_agnews, make_cifar10, make_mnist, make_wikitext2
from repro.models import LeNet


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def mnist_tiny():
    """A 32-sample MNIST analogue shared across tests (read-only)."""
    return make_mnist(train_count=32, val_count=16, seed=1)


@pytest.fixture(scope="session")
def cifar10_tiny():
    return make_cifar10(train_count=16, val_count=8, seed=2)


@pytest.fixture(scope="session")
def agnews_tiny():
    return make_agnews(train_samples=48, val_samples=16, vocab_size=120, seed=3)


@pytest.fixture(scope="session")
def wikitext_tiny():
    return make_wikitext2(train_tokens=2_400, val_tokens=600, vocab_size=60, seed=4)


@pytest.fixture
def amalgam_config() -> AmalgamConfig:
    return AmalgamConfig(augmentation_amount=0.5, num_subnetworks=2, seed=7)


@pytest.fixture
def lenet(rng) -> LeNet:
    return LeNet(num_classes=10, in_channels=1, image_size=28, rng=rng)



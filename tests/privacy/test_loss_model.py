"""Tests for the privacy-loss / computing-loss model (Section 6.1-6.2, Figure 15)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AmalgamConfig
from repro.privacy import (
    amount_for_privacy_budget,
    build_image_report,
    build_text_report,
    computing_performance_loss,
    empirical_performance_loss,
    model_vs_empirical,
    privacy_loss,
    tradeoff_curve,
)


class TestLossModel:
    @pytest.mark.parametrize("amount,expected", [(0.0, 1.0), (0.25, 0.8), (0.5, 2 / 3),
                                                 (1.0, 0.5), (3.0, 0.25)])
    def test_privacy_loss_values(self, amount, expected):
        assert privacy_loss(amount) == pytest.approx(expected)

    @pytest.mark.parametrize("amount", [0.25, 0.5, 1.0, 2.0])
    def test_epsilon_plus_rho_equals_one(self, amount):
        assert privacy_loss(amount) + computing_performance_loss(amount) == pytest.approx(1.0)

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            privacy_loss(-0.1)
        with pytest.raises(ValueError):
            computing_performance_loss(-0.1)

    def test_privacy_loss_monotone_decreasing(self):
        amounts = np.linspace(0, 3, 20)
        values = [privacy_loss(a) for a in amounts]
        assert values == sorted(values, reverse=True)

    def test_tradeoff_curve_structure(self):
        curve = tradeoff_curve([0.25, 0.5, 1.0])
        assert len(curve) == 3
        assert curve[0].privacy_loss > curve[-1].privacy_loss
        assert curve[0].computing_loss < curve[-1].computing_loss

    def test_amount_for_privacy_budget_inverts_epsilon(self):
        for epsilon in (0.9, 0.5, 0.25):
            amount = amount_for_privacy_budget(epsilon)
            assert privacy_loss(amount) == pytest.approx(epsilon)

    def test_amount_for_privacy_budget_validation(self):
        with pytest.raises(ValueError):
            amount_for_privacy_budget(0.0)
        with pytest.raises(ValueError):
            amount_for_privacy_budget(1.5)

    def test_empirical_performance_loss(self):
        assert empirical_performance_loss(10.0, 20.0) == pytest.approx(0.5)
        assert empirical_performance_loss(10.0, 10.0) == pytest.approx(0.0)
        assert empirical_performance_loss(10.0, 5.0) == 0.0  # clamped
        with pytest.raises(ValueError):
            empirical_performance_loss(0.0, 1.0)

    def test_model_vs_empirical_rows(self):
        rows = model_vs_empirical([0.5, 1.0], baseline_time=10.0, augmented_times=[15.0, 20.0])
        assert rows[0]["rho_model"] == pytest.approx(1 / 3)
        assert rows[1]["rho_measured"] == pytest.approx(0.5)

    @given(st.floats(0.0, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_identity_property(self, amount):
        assert privacy_loss(amount) + computing_performance_loss(amount) == pytest.approx(1.0)
        assert 0.0 < privacy_loss(amount) <= 1.0


class TestReports:
    def test_image_report_fields(self):
        report = build_image_report(AmalgamConfig(augmentation_amount=0.5), 28, 28, channels=1)
        assert report.epsilon == pytest.approx(2 / 3)
        assert report.rho == pytest.approx(1 / 3)
        assert report.search_space is not None
        assert report.brute_force is not None
        assert not report.brute_force.feasible
        text = str(report)
        assert "privacy loss" in text and "search space" in text

    def test_text_report(self):
        report = build_text_report(AmalgamConfig(augmentation_amount=0.25), batch_length=20)
        assert 10 ** report.search_space.log10 == pytest.approx(53130, rel=1e-6)

    def test_small_search_space_can_be_feasible(self):
        report = build_text_report(AmalgamConfig(augmentation_amount=0.1), batch_length=5)
        assert report.brute_force.feasible

"""Tests for the adversarial attacks of Section 6.3."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.core import Amalgam, AmalgamConfig, DatasetAugmenter
from repro.core.search_space import SearchSpace
from repro.models import LeNet
from repro.privacy.attacks import (
    DLGAttack,
    LearnedDenoiser,
    SmallScaleBruteForce,
    attack_cost,
    attribution_correlation,
    capture_gradients,
    denoising_attack,
    gaussian_denoise,
    infer_label_idlg,
    linear_layer_leakage,
    median_denoise,
    model_inversion_attack,
    occlusion_attribution,
    psnr,
    resize_nearest,
    shapley_sampling_attribution,
)


class SmallMLP(nn.Module):
    def __init__(self, in_features=36, classes=4, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.flatten = nn.Flatten()
        self.fc1 = nn.Linear(in_features, 16, rng=rng)
        self.fc2 = nn.Linear(16, classes, rng=rng)

    def forward(self, x):
        return self.fc2(self.fc1(self.flatten(x)).relu())


class TestBruteForce:
    def test_attack_cost_infeasible_for_table2_spaces(self):
        cost = attack_cost(SearchSpace(346.0))  # MNIST at 25%
        assert not cost.feasible
        assert cost.expected_years_log10 > 300

    def test_attack_cost_feasible_for_tiny_space(self):
        cost = attack_cost(SearchSpace(5.0), guesses_per_second=1e6)
        assert cost.feasible

    def test_attack_cost_validation(self):
        with pytest.raises(ValueError):
            attack_cost(SearchSpace(10.0), guesses_per_second=0)

    def test_small_scale_enumeration_finds_original_but_is_ambiguous(self, rng):
        original = rng.integers(0, 10, 5)
        augmenter_positions = np.sort(rng.choice(8, 5, replace=False))
        augmented = rng.integers(0, 10, 8)
        augmented[augmenter_positions] = original
        outcome = SmallScaleBruteForce().run(augmented, original)
        assert outcome.found_exact
        assert outcome.candidates_tested == 56  # C(8, 5)
        assert outcome.ambiguity == 1.0  # every candidate is equally plausible

    def test_small_scale_with_plausibility_filter(self):
        augmented = np.array([0, 9, 1, 9, 2])
        original = np.array([0, 1, 2])
        outcome = SmallScaleBruteForce(plausibility=lambda c: 9 not in c).run(augmented,
                                                                              original)
        assert outcome.plausible_candidates == 1
        assert outcome.found_exact

    def test_small_scale_respects_candidate_cap(self, rng):
        augmented = rng.integers(0, 5, 20)
        original = augmented[:10]
        outcome = SmallScaleBruteForce(max_candidates=100).run(augmented, original)
        assert outcome.candidates_tested == 100

    def test_original_longer_than_augmented_rejected(self):
        with pytest.raises(ValueError):
            SmallScaleBruteForce().run(np.arange(3), np.arange(5))


class TestGradientLeakage:
    def test_capture_gradients_returns_all_parameters(self):
        model = SmallMLP()
        gradients = capture_gradients(model, np.random.default_rng(0).random((1, 1, 6, 6)), 1)
        assert set(gradients) == {name for name, _ in model.named_parameters()}

    def test_linear_layer_leakage_recovers_input_exactly(self, rng):
        model = SmallMLP(seed=3)
        sample = rng.random((1, 1, 6, 6))
        gradients = capture_gradients(model, sample, 2)
        reconstruction = linear_layer_leakage(gradients["fc1.weight"], gradients["fc1.bias"])
        assert np.allclose(reconstruction, sample.reshape(-1), atol=1e-8)

    def test_linear_layer_leakage_rejects_zero_bias_grad(self):
        with pytest.raises(ValueError):
            linear_layer_leakage(np.ones((4, 8)), np.zeros(4))

    def test_idlg_label_inference(self, rng):
        model = SmallMLP(seed=1)
        true_label = 3
        gradients = capture_gradients(model, rng.random((1, 1, 6, 6)), true_label)
        assert infer_label_idlg(gradients["fc2.weight"]) == true_label

    def test_dlg_reduces_gradient_distance(self, rng):
        model = SmallMLP(seed=2)
        sample = rng.random((1, 1, 6, 6))
        gradients = capture_gradients(model, sample, 1)
        attack = DLGAttack(model, iterations=25, step_size=0.1, seed=0)
        result = attack.run(gradients, (1, 1, 6, 6))
        assert result.inferred_label == 1
        history = result.objective_history
        assert history[-1] <= history[0]
        assert all(later <= earlier + 1e-12 for earlier, later in zip(history, history[1:]))

    def test_dlg_against_augmented_model_cannot_match_original_dimensions(self, mnist_tiny):
        config = AmalgamConfig(augmentation_amount=0.5, num_subnetworks=2, seed=4)
        amalgam = Amalgam(config)
        model = LeNet(10, 1, 28, rng=np.random.default_rng(0))
        job = amalgam.prepare_image_job(model, mnist_tiny)
        augmented_sample = job.train_data.dataset.samples[:1].astype(float)
        label = int(mnist_tiny.train.labels[0])

        job.augmented_model.zero_grad()
        job.augmented_model.loss(Tensor(augmented_sample), np.array([label])).backward()
        observed = {name: p.grad.copy()
                    for name, p in job.augmented_model.named_parameters()
                    if p.grad is not None}
        job.augmented_model.zero_grad()

        attack = DLGAttack(job.augmented_model,
                           loss_builder=lambda m, dummy, lab: m.loss(dummy, np.array([lab])),
                           iterations=2, seed=0)
        result = attack.run(observed, augmented_sample.shape, label=label)
        assert result.reconstruction.shape == augmented_sample.shape
        assert result.mse_against(mnist_tiny.train.samples[:1]) == float("inf")

    def test_mse_against_same_shape(self, rng):
        from repro.privacy.attacks.dlg import DLGResult
        reference = rng.random((1, 4))
        result = DLGResult(reconstruction=reference.copy())
        assert result.mse_against(reference) == 0.0


class TestModelInversion:
    def test_occlusion_attribution_highlights_informative_pixel(self):
        """A classifier that only looks at pixel 0 must attribute everything to it."""
        model = SmallMLP(in_features=4, classes=2, seed=0)
        model.fc1.weight.data[:] = 0.0
        model.fc1.weight.data[:, 0] = 5.0
        model.fc2.weight.data[:] = 0.0
        model.fc2.weight.data[1, :] = 1.0
        sample = np.array([[[1.0, 0.5], [0.5, 0.5]]])
        attribution = occlusion_attribution(model, sample, target_class=1)
        assert abs(attribution[0, 0, 0]) == max(np.abs(attribution).max(), 1e-12)

    def test_shapley_sampling_shape(self, rng):
        model = SmallMLP(in_features=9, classes=3, seed=1)
        sample = rng.random((1, 3, 3))
        attribution = shapley_sampling_attribution(model, sample, 0, num_samples=4,
                                                   rng=np.random.default_rng(0))
        assert attribution.shape == sample.shape

    def test_attribution_correlation_bounds(self, rng):
        a = rng.random((3, 3))
        assert attribution_correlation(a, a) == pytest.approx(1.0)
        assert attribution_correlation(a, -a) == pytest.approx(-1.0)
        assert attribution_correlation(a, np.zeros_like(a)) == 0.0

    def test_inversion_attack_distorts_explanations(self, mnist_tiny):
        """Figure 17: attribution maps before and after augmentation decorrelate."""
        config = AmalgamConfig(augmentation_amount=0.5, num_subnetworks=2, seed=6)
        amalgam = Amalgam(config)
        job = amalgam.prepare_image_job(LeNet(10, 1, 28, rng=np.random.default_rng(1)),
                                        mnist_tiny)
        sample = mnist_tiny.train.samples[0].astype(float)
        augmented_sample = job.train_data.dataset.samples[0].astype(float)
        result = model_inversion_attack(
            LeNet(10, 1, 28, rng=np.random.default_rng(1)), job.augmented_model,
            sample[:, ::2, ::2], augmented_sample[:, ::3, ::3],
            original_positions=np.stack([np.arange(196)]), target_class=0,
            method=lambda model, s, c: np.random.default_rng(0).random(s.shape))
        assert -1.0 <= result.correlation <= 1.0


class TestDenoising:
    def test_psnr_identity_is_infinite(self, rng):
        image = rng.random((1, 4, 4))
        assert psnr(image, image) == float("inf")

    def test_psnr_decreases_with_noise(self, rng):
        image = rng.random((1, 8, 8))
        small = psnr(image, np.clip(image + 0.01, 0, 1))
        large = psnr(image, np.clip(image + 0.3, 0, 1))
        assert small > large

    def test_gaussian_denoise_reduces_noise(self, mnist_tiny):
        original = mnist_tiny.train.samples[0].astype(float)
        rng = np.random.default_rng(0)
        noisy = np.clip(original + rng.normal(0, 0.3, original.shape), 0, 1)
        denoised = gaussian_denoise(noisy, 5, 1.0)
        assert psnr(original, denoised) > psnr(original, noisy)

    def test_median_denoise_shape(self, rng):
        image = rng.random((3, 8, 8))
        assert median_denoise(image).shape == image.shape

    def test_resize_nearest(self, rng):
        image = rng.random((3, 12, 12))
        assert resize_nearest(image, (8, 8)).shape == (3, 8, 8)

    def test_learned_denoiser_trains_and_denoises(self, mnist_tiny):
        clean = mnist_tiny.train.samples[:4].astype(float)
        denoiser = LearnedDenoiser(channels=1, hidden=4, rng=np.random.default_rng(0))
        final_loss = denoiser.fit(clean, noise_sigma=0.2, epochs=5, lr=1e-2)
        assert final_loss < 0.2
        out = denoiser.denoise(clean[0])
        assert out.shape == clean[0].shape

    def test_denoising_attack_fails_on_augmented_image(self, mnist_tiny):
        """Figure 18: denoising recovers the Gaussian-noised image but not the
        Amalgam-augmented one."""
        original = mnist_tiny.train.samples[0].astype(float)
        augmenter = DatasetAugmenter(AmalgamConfig(augmentation_amount=0.2, seed=1))
        augmented = augmenter.augment_images(mnist_tiny.train).dataset.samples[0].astype(float)
        outcome = denoising_attack(original, augmented,
                                   denoiser=lambda image: gaussian_denoise(image, 5, 1.0))
        assert outcome.gaussian_noise_removed
        assert not outcome.augmentation_removed
        assert outcome.psnr_denoised_augmented < outcome.psnr_denoised_gaussian

"""Tests for the model zoo: forward shapes, backward passes and the registry."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn import functional as F
from repro.models import (
    CBAM,
    LeNet,
    TextClassifier,
    TransformerLM,
    VGG16WithCBAM,
    available_models,
    create_model,
    densenet_small,
    mobilenet_v2_small,
    resnet18,
    vgg16,
)


def _train_step(model, inputs, labels):
    """One SGD step; returns (loss_before, loss_after)."""
    optimizer = nn.optim.SGD(model.parameters(), lr=0.05)
    before = F.cross_entropy(model(inputs), labels).item()
    for _ in range(3):
        optimizer.zero_grad()
        loss = F.cross_entropy(model(inputs), labels)
        loss.backward()
        optimizer.step()
    after = F.cross_entropy(model(inputs), labels).item()
    return before, after


class TestLeNet:
    def test_forward_shape_28(self, rng):
        model = LeNet(10, 1, 28, rng=rng)
        assert model(Tensor(np.zeros((2, 1, 28, 28)))).shape == (2, 10)

    def test_forward_shape_32(self, rng):
        model = LeNet(10, 3, 32, rng=rng)
        assert model(Tensor(np.zeros((2, 3, 32, 32)))).shape == (2, 10)

    def test_parameter_count_matches_classic_lenet(self, rng):
        # The classic LeNet-5 on 28x28 MNIST has ~61k parameters.
        model = LeNet(10, 1, 28, rng=rng)
        assert 55_000 < model.num_parameters() < 70_000

    def test_training_step_reduces_loss(self, rng):
        model = LeNet(4, 1, 28, rng=rng)
        inputs = Tensor(rng.random((8, 1, 28, 28)))
        labels = rng.integers(0, 4, 8)
        before, after = _train_step(model, inputs, labels)
        assert after < before


class TestCNNZoo:
    @pytest.mark.parametrize("factory,kwargs", [
        (resnet18, {"width": 8}),
        (vgg16, {"width_multiplier": 0.125}),
        (densenet_small, {}),
        (mobilenet_v2_small, {}),
    ])
    def test_forward_and_backward(self, factory, kwargs, rng):
        model = factory(num_classes=10, in_channels=3, rng=rng, **kwargs)
        x = Tensor(rng.random((2, 3, 32, 32)), requires_grad=True)
        logits = model(x)
        assert logits.shape == (2, 10)
        F.cross_entropy(logits, np.array([1, 2])).backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_resnet_width_scales_parameters(self, rng):
        small = resnet18(width=8, rng=np.random.default_rng(0)).num_parameters()
        large = resnet18(width=16, rng=np.random.default_rng(0)).num_parameters()
        assert large > 3 * small

    def test_paper_scale_resnet18_parameter_count(self):
        """Full-width ResNet-18 should be in the ~11M range reported in Table 3."""
        model = resnet18(num_classes=10, in_channels=3, width=64,
                         rng=np.random.default_rng(0))
        assert 10.5e6 < model.num_parameters() < 12.0e6

    def test_mobilenet_uses_depthwise_convolutions(self, rng):
        model = mobilenet_v2_small(rng=rng)
        depthwise = [m for _, m in model.named_modules()
                     if isinstance(m, nn.Conv2d) and m.groups > 1]
        assert depthwise

    def test_densenet_channel_growth(self, rng):
        model = densenet_small(growth_rate=8, rng=rng)
        out = model(Tensor(rng.random((1, 3, 16, 16))))
        assert out.shape == (1, 10)


class TestCBAM:
    def test_cbam_preserves_shape(self, rng):
        module = CBAM(8, rng=rng)
        x = Tensor(rng.random((2, 8, 6, 6)), requires_grad=True)
        out = module(x)
        assert out.shape == (2, 8, 6, 6)
        out.sum().backward()

    def test_attention_is_bounded_scaling(self, rng):
        module = CBAM(4, rng=rng)
        x = Tensor(np.abs(rng.random((1, 4, 5, 5))))
        out = module(x)
        assert np.all(out.data <= x.data + 1e-9)
        assert np.all(out.data >= 0)

    def test_vgg16_cbam_forward(self, rng):
        model = VGG16WithCBAM(num_classes=10, width_multiplier=0.125, rng=rng)
        assert model(Tensor(rng.random((1, 3, 32, 32)))).shape == (1, 10)

    def test_vgg16_cbam_has_more_parameters_than_vgg16(self):
        plain = vgg16(width_multiplier=0.125, rng=np.random.default_rng(0)).num_parameters()
        with_cbam = VGG16WithCBAM(width_multiplier=0.125,
                                  rng=np.random.default_rng(0)).num_parameters()
        assert with_cbam > plain


class TestNLPModels:
    def test_text_classifier_shapes(self, rng):
        model = TextClassifier(vocab_size=100, embed_dim=16, num_classes=4, rng=rng)
        logits = model(np.array([[1, 2, 3, 4], [5, 6, 7, 8]]))
        assert logits.shape == (2, 4)

    def test_text_classifier_learns_separable_classes(self, rng):
        model = TextClassifier(vocab_size=40, embed_dim=16, num_classes=2, rng=rng)
        class0 = rng.integers(0, 20, (16, 8))
        class1 = rng.integers(20, 40, (16, 8))
        inputs = np.concatenate([class0, class1])
        labels = np.array([0] * 16 + [1] * 16)
        before, after = _train_step(model, inputs, labels)
        assert after < before

    def test_transformer_lm_shapes(self, rng):
        model = TransformerLM(vocab_size=50, embed_dim=16, num_heads=2, num_layers=1,
                              feedforward_dim=32, rng=rng)
        logits = model(np.array([[1, 2, 3, 4, 5]]))
        assert logits.shape == (1, 5, 50)

    def test_transformer_loss_decreases(self, rng):
        model = TransformerLM(vocab_size=30, embed_dim=16, num_heads=2, num_layers=1,
                              feedforward_dim=32, dropout=0.0, rng=rng)
        tokens = rng.integers(0, 30, (2, 12))
        inputs, targets = tokens[:, :-1], tokens[:, 1:]
        optimizer = nn.optim.Adam(model.parameters(), lr=0.01)
        before = model.loss(inputs, targets).item()
        for _ in range(10):
            optimizer.zero_grad()
            loss = model.loss(inputs, targets)
            loss.backward()
            optimizer.step()
        assert model.loss(inputs, targets).item() < before


class TestRegistry:
    def test_available_models_lists_paper_models(self):
        names = available_models()
        for expected in ("resnet18", "vgg16", "densenet121", "mobilenetv2", "lenet"):
            assert expected in names

    def test_create_model_tiny_scale(self, rng):
        model = create_model("resnet18", num_classes=10, in_channels=3, scale="tiny", rng=rng)
        assert model(Tensor(np.zeros((1, 3, 32, 32)))).shape == (1, 10)

    def test_create_model_lenet_uses_image_size(self, rng):
        model = create_model("lenet", num_classes=10, in_channels=1, image_size=28, rng=rng)
        assert model(Tensor(np.zeros((1, 1, 28, 28)))).shape == (1, 10)

    def test_create_model_unknown_raises(self):
        with pytest.raises(KeyError):
            create_model("alexnet")

    def test_deterministic_construction(self):
        a = create_model("vgg16", scale="tiny", rng=np.random.default_rng(4))
        b = create_model("vgg16", scale="tiny", rng=np.random.default_rng(4))
        assert np.allclose(dict(a.named_parameters())["classifier.0.weight"].data,
                           dict(b.named_parameters())["classifier.0.weight"].data)

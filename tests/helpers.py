"""Shared non-fixture test helpers.

Importable as ``from ..helpers import ...`` from any test package (fixtures
stay in ``conftest.py``; plain functions live here so test modules can import
them without relying on pytest's conftest machinery).
"""

from __future__ import annotations

import numpy as np


def finite_difference(fn, array: np.ndarray, index, eps: float = 1e-6) -> float:
    """Central finite-difference derivative of ``fn`` w.r.t. ``array[index]``."""
    original = array[index]
    array[index] = original + eps
    upper = fn()
    array[index] = original - eps
    lower = fn()
    array[index] = original
    return (upper - lower) / (2.0 * eps)

"""Tests for model/state serialization helpers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.serialization import (
    load_metadata,
    load_state,
    save_state,
    state_from_bytes,
    state_size_bytes,
    state_to_bytes,
)


@pytest.fixture
def small_model(rng):
    return nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng))


class TestFileRoundTrip:
    def test_save_and_load_state(self, small_model, tmp_path):
        path = tmp_path / "model.npz"
        save_state(small_model, path)
        state = load_state(path)
        assert set(state) == set(small_model.state_dict())
        for name, value in small_model.state_dict().items():
            assert np.allclose(state[name], value)

    def test_metadata_roundtrip(self, small_model, tmp_path):
        path = tmp_path / "model.npz"
        save_state(small_model, path, metadata={"task": "classification", "epochs": 3})
        metadata = load_metadata(path)
        assert metadata == {"task": "classification", "epochs": 3}

    def test_missing_metadata_returns_empty(self, small_model, tmp_path):
        path = tmp_path / "model.npz"
        save_state(small_model, path)
        assert load_metadata(path) == {}

    def test_loaded_state_restores_model(self, small_model, tmp_path, rng):
        path = tmp_path / "model.npz"
        save_state(small_model, path)
        other = nn.Sequential(nn.Linear(4, 8, rng=np.random.default_rng(5)), nn.ReLU(),
                              nn.Linear(8, 2, rng=np.random.default_rng(6)))
        other.load_state_dict(load_state(path))
        x = nn.Tensor(np.random.default_rng(0).standard_normal((3, 4)))
        assert np.allclose(small_model(x).data, other(x).data)


class TestBytesRoundTrip:
    def test_bytes_roundtrip_preserves_arrays(self, small_model):
        state = small_model.state_dict()
        restored = state_from_bytes(state_to_bytes(state))
        assert set(restored) == set(state)
        for name in state:
            assert np.allclose(restored[name], state[name])

    def test_state_size_bytes(self):
        state = {"a": np.zeros(10, dtype=np.float64), "b": np.zeros((2, 2), dtype=np.float32)}
        assert state_size_bytes(state) == 10 * 8 + 4 * 4

"""Tests for functional ops: convolution, pooling, normalisation, losses, embedding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn import functional as F

from ..helpers import finite_difference


class TestIm2Col:
    def test_shapes(self, rng):
        images = rng.standard_normal((2, 3, 8, 8))
        cols, (oh, ow) = F.im2col(images, (3, 3), (1, 1), (1, 1))
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2, 64, 27)

    def test_col2im_is_adjoint_of_im2col(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
        images = rng.standard_normal((1, 2, 6, 6))
        cols, _ = F.im2col(images, (3, 3), (2, 2), (0, 0))
        other = rng.standard_normal(cols.shape)
        back = F.col2im(other, images.shape, (3, 3), (2, 2), (0, 0))
        assert np.sum(cols * other) == pytest.approx(np.sum(images * back), rel=1e-9)


class TestConv2d:
    def test_output_shape_stride_padding(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 9, 9)))
        w = Tensor(rng.standard_normal((5, 3, 3, 3)))
        assert F.conv2d(x, w).shape == (2, 5, 7, 7)
        assert F.conv2d(x, w, padding=1).shape == (2, 5, 9, 9)
        assert F.conv2d(x, w, stride=2, padding=1).shape == (2, 5, 5, 5)

    def test_matches_direct_convolution(self, rng):
        x_data = rng.standard_normal((1, 1, 5, 5))
        w_data = rng.standard_normal((1, 1, 3, 3))
        out = F.conv2d(Tensor(x_data), Tensor(w_data)).data
        expected = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                expected[i, j] = np.sum(x_data[0, 0, i:i + 3, j:j + 3] * w_data[0, 0])
        assert np.allclose(out[0, 0], expected)

    def test_bias_added_per_channel(self, rng):
        x = Tensor(np.zeros((1, 1, 4, 4)))
        w = Tensor(np.zeros((2, 1, 3, 3)))
        b = Tensor(np.array([1.5, -2.0]))
        out = F.conv2d(x, w, b, padding=1)
        assert np.allclose(out.data[0, 0], 1.5)
        assert np.allclose(out.data[0, 1], -2.0)

    def test_gradients_match_finite_difference(self, rng):
        x_data = rng.standard_normal((2, 2, 6, 6))
        w_data = rng.standard_normal((3, 2, 3, 3))
        x = Tensor(x_data, requires_grad=True)
        w = Tensor(w_data, requires_grad=True)
        (F.conv2d(x, w, stride=2, padding=1) ** 2).sum().backward()

        def loss():
            return float((F.conv2d(Tensor(x_data), Tensor(w_data), stride=2, padding=1).data ** 2).sum())

        assert finite_difference(loss, w_data, (1, 0, 2, 2)) == pytest.approx(
            w.grad[1, 0, 2, 2], rel=1e-4)
        assert finite_difference(loss, x_data, (0, 1, 3, 3)) == pytest.approx(
            x.grad[0, 1, 3, 3], rel=1e-4)

    def test_grouped_conv_matches_per_group_dense(self, rng):
        x = Tensor(rng.standard_normal((1, 4, 5, 5)))
        w = Tensor(rng.standard_normal((4, 2, 3, 3)))
        grouped = F.conv2d(x, w, padding=1, groups=2)
        first = F.conv2d(x[:, :2], w[:2], padding=1)
        second = F.conv2d(x[:, 2:], w[2:], padding=1)
        assert np.allclose(grouped.data[:, :2], first.data)
        assert np.allclose(grouped.data[:, 2:], second.data)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.standard_normal((1, 3, 5, 5)))
        w = Tensor(rng.standard_normal((2, 4, 3, 3)))
        with pytest.raises(ValueError):
            F.conv2d(x, w)


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2)
        assert np.allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_backward_routes_to_argmax(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        grad = x.grad[0, 0]
        assert grad[1, 1] == 1 and grad[1, 3] == 1 and grad[3, 1] == 1 and grad[3, 3] == 1
        assert grad.sum() == 4

    def test_avg_pool_values_and_backward(self):
        x = Tensor(np.ones((1, 2, 4, 4)), requires_grad=True)
        out = F.avg_pool2d(x, 2)
        assert np.allclose(out.data, 1.0)
        out.sum().backward()
        assert np.allclose(x.grad, 0.25)

    def test_adaptive_avg_pool_global(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 6, 6)))
        out = F.adaptive_avg_pool2d(x, 1)
        assert out.shape == (2, 3, 1, 1)
        assert np.allclose(out.data[:, :, 0, 0], x.data.mean(axis=(2, 3)))

    def test_adaptive_avg_pool_divisible(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 8, 8)))
        assert F.adaptive_avg_pool2d(x, 2).shape == (1, 2, 2, 2)

    def test_adaptive_avg_pool_indivisible_raises(self, rng):
        with pytest.raises(ValueError):
            F.adaptive_avg_pool2d(Tensor(np.zeros((1, 1, 7, 7))), 2)


class TestNormalisation:
    def test_batch_norm_normalises_in_training(self, rng):
        x = Tensor(rng.standard_normal((8, 3, 4, 4)) * 5 + 2)
        gamma, beta = Tensor(np.ones(3)), Tensor(np.zeros(3))
        running_mean, running_var = np.zeros(3), np.ones(3)
        out = F.batch_norm(x, gamma, beta, running_mean, running_var, training=True)
        assert np.allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        assert np.allclose(out.data.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_batch_norm_updates_running_stats(self, rng):
        x = Tensor(rng.standard_normal((8, 2, 4, 4)) + 3.0)
        running_mean, running_var = np.zeros(2), np.ones(2)
        F.batch_norm(x, Tensor(np.ones(2)), Tensor(np.zeros(2)),
                     running_mean, running_var, training=True, momentum=0.5)
        assert np.all(running_mean > 1.0)

    def test_batch_norm_eval_uses_running_stats(self, rng):
        x = Tensor(rng.standard_normal((4, 2, 3, 3)))
        running_mean, running_var = np.zeros(2), np.ones(2)
        out = F.batch_norm(x, Tensor(np.ones(2)), Tensor(np.zeros(2)),
                           running_mean, running_var, training=False)
        assert np.allclose(out.data, x.data, atol=1e-2)

    def test_batch_norm_2d_inputs(self, rng):
        x = Tensor(rng.standard_normal((16, 5)))
        out = F.batch_norm(x, Tensor(np.ones(5)), Tensor(np.zeros(5)),
                           np.zeros(5), np.ones(5), training=True)
        assert np.allclose(out.data.mean(axis=0), 0.0, atol=1e-7)

    def test_batch_norm_rejects_3d(self):
        with pytest.raises(ValueError):
            F.batch_norm(Tensor(np.zeros((2, 3, 4))), Tensor(np.ones(3)), Tensor(np.zeros(3)),
                         np.zeros(3), np.ones(3), training=True)

    def test_layer_norm_last_axis(self, rng):
        x = Tensor(rng.standard_normal((4, 6, 8)))
        out = F.layer_norm(x, Tensor(np.ones(8)), Tensor(np.zeros(8)))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-7)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)


class TestActivationsAndSoftmax:
    def test_softmax_sums_to_one(self, rng):
        x = Tensor(rng.standard_normal((3, 7)))
        out = F.softmax(x)
        assert np.allclose(out.data.sum(axis=-1), 1.0)
        assert np.all(out.data >= 0)

    def test_softmax_shift_invariance(self, rng):
        x = rng.standard_normal((2, 5))
        assert np.allclose(F.softmax(Tensor(x)).data, F.softmax(Tensor(x + 100.0)).data)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.standard_normal((2, 5)))
        assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data))

    def test_relu6_clips(self):
        x = Tensor(np.array([-1.0, 3.0, 9.0]))
        assert np.allclose(F.relu6(x).data, [0, 3, 6])

    def test_gelu_limits_and_positive_branch(self):
        x = Tensor(np.linspace(0, 4, 25))
        out = F.gelu(x).data
        assert np.all(np.diff(out) > 0)          # monotone for positive inputs
        assert F.gelu(Tensor(np.array([-6.0]))).data[0] == pytest.approx(0.0, abs=1e-3)
        assert F.gelu(Tensor(np.array([6.0]))).data[0] == pytest.approx(6.0, abs=1e-3)

    def test_dropout_disabled_in_eval(self, rng):
        x = Tensor(rng.standard_normal((10, 10)))
        assert np.array_equal(F.dropout(x, 0.5, training=False).data, x.data)

    def test_dropout_preserves_expectation(self, rng):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(0))
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)


class TestLossesAndEmbedding:
    def test_cross_entropy_perfect_prediction_is_small(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_cross_entropy_uniform_equals_log_classes(self):
        logits = Tensor(np.zeros((4, 5)))
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert loss.item() == pytest.approx(np.log(5))

    def test_cross_entropy_gradient_direction(self):
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        F.cross_entropy(logits, np.array([1])).backward()
        assert logits.grad[0, 1] < 0
        assert logits.grad[0, 0] > 0 and logits.grad[0, 2] > 0

    def test_nll_matches_cross_entropy(self, rng):
        logits = Tensor(rng.standard_normal((6, 4)))
        targets = np.array([0, 1, 2, 3, 0, 1])
        ce = F.cross_entropy(logits, targets).item()
        nll = F.nll_loss(F.log_softmax(logits), targets).item()
        assert ce == pytest.approx(nll)

    def test_mse_loss(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = F.mse_loss(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)
        loss.backward()
        assert np.allclose(pred.grad, [1.0, 2.0])

    def test_accuracy(self):
        logits = Tensor(np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]]))
        assert F.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_embedding_lookup_and_gradient(self, rng):
        weight = Tensor(rng.standard_normal((10, 4)), requires_grad=True)
        indices = np.array([[1, 2], [2, 3]])
        out = F.embedding(indices, weight)
        assert out.shape == (2, 2, 4)
        assert np.allclose(out.data[0, 1], weight.data[2])
        out.sum().backward()
        assert np.allclose(weight.grad[2], 2.0)  # index 2 used twice
        assert np.allclose(weight.grad[0], 0.0)

    def test_linear_matches_matmul(self, rng):
        x = Tensor(rng.standard_normal((3, 4)))
        w = Tensor(rng.standard_normal((2, 4)))
        b = Tensor(rng.standard_normal(2))
        assert np.allclose(F.linear(x, w, b).data, x.data @ w.data.T + b.data)

    def test_one_hot(self):
        encoded = F.one_hot(np.array([0, 2]), 3)
        assert np.allclose(encoded, [[1, 0, 0], [0, 0, 1]])

    @given(st.integers(2, 8), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_cross_entropy_nonnegative(self, batch, classes):
        rng = np.random.default_rng(batch * 13 + classes)
        logits = Tensor(rng.standard_normal((batch, classes)))
        targets = rng.integers(0, classes, batch)
        assert F.cross_entropy(logits, targets).item() >= 0.0

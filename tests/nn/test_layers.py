"""Tests for Module mechanics and the layer library."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


class TestModuleMechanics:
    def test_parameters_are_registered(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}
        assert names["weight"].shape == (3, 4)

    def test_nested_parameter_names(self, rng):
        model = nn.Sequential(nn.Linear(4, 4, rng=rng), nn.ReLU(), nn.Linear(4, 2, rng=rng))
        names = [name for name, _ in model.named_parameters()]
        assert "0.weight" in names and "2.bias" in names

    def test_num_parameters_counts_scalars(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        assert layer.num_parameters() == 4 * 3 + 3

    def test_buffers_are_registered_and_in_state_dict(self):
        bn = nn.BatchNorm2d(5)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_state_dict_roundtrip(self, rng):
        source = nn.Linear(6, 2, rng=rng)
        target = nn.Linear(6, 2, rng=np.random.default_rng(99))
        assert not np.allclose(source.weight.data, target.weight.data)
        target.load_state_dict(source.state_dict())
        assert np.allclose(source.weight.data, target.weight.data)
        assert np.allclose(source.bias.data, target.bias.data)

    def test_load_state_dict_shape_mismatch_raises(self, rng):
        layer = nn.Linear(4, 2, rng=rng)
        bad = {name: np.zeros((1, 1)) for name in dict(layer.named_parameters())}
        with pytest.raises(ValueError):
            layer.load_state_dict(bad)

    def test_load_state_dict_missing_key_strict(self, rng):
        layer = nn.Linear(4, 2, rng=rng)
        with pytest.raises(KeyError):
            layer.load_state_dict({}, strict=True)
        layer.load_state_dict({}, strict=False)  # no error

    def test_train_eval_propagates(self, rng):
        model = nn.Sequential(nn.Linear(2, 2, rng=rng), nn.Dropout(0.5))
        model.eval()
        assert all(not child.training for child in model.children())
        model.train()
        assert all(child.training for child in model.children())

    def test_zero_grad_clears_gradients(self, rng):
        layer = nn.Linear(3, 1, rng=rng)
        layer(Tensor(np.ones((2, 3)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_named_modules_enumerates_tree(self, rng):
        model = nn.Sequential(nn.Linear(2, 2, rng=rng), nn.Sequential(nn.ReLU()))
        names = [name for name, _ in model.named_modules()]
        assert "" in names and "0" in names and "1.0" in names

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(1)


class TestLinearConv:
    def test_linear_forward_shape(self, rng):
        layer = nn.Linear(8, 3, rng=rng)
        assert layer(Tensor(np.zeros((5, 8)))).shape == (5, 3)

    def test_linear_no_bias(self, rng):
        layer = nn.Linear(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_conv_forward_shape_and_output_shape_helper(self, rng):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        out = conv(Tensor(np.zeros((2, 3, 16, 16))))
        assert out.shape == (2, 8, 8, 8)
        assert conv.output_shape(16, 16) == (8, 8)

    def test_conv_invalid_groups(self, rng):
        with pytest.raises(ValueError):
            nn.Conv2d(3, 8, 3, groups=2, rng=rng)

    def test_conv_depthwise(self, rng):
        conv = nn.Conv2d(4, 4, 3, padding=1, groups=4, rng=rng)
        assert conv(Tensor(np.zeros((1, 4, 6, 6)))).shape == (1, 4, 6, 6)
        assert conv.weight.shape == (4, 1, 3, 3)

    def test_deterministic_init_with_seeded_rng(self):
        a = nn.Linear(5, 5, rng=np.random.default_rng(1))
        b = nn.Linear(5, 5, rng=np.random.default_rng(1))
        assert np.allclose(a.weight.data, b.weight.data)


class TestPoolingNormActivation:
    def test_maxpool_layer(self, rng):
        assert nn.MaxPool2d(2)(Tensor(np.zeros((1, 2, 8, 8)))).shape == (1, 2, 4, 4)

    def test_avgpool_layer(self):
        assert nn.AvgPool2d(2)(Tensor(np.ones((1, 1, 4, 4)))).data.mean() == 1.0

    def test_global_avg_pool(self, rng):
        out = nn.GlobalAvgPool2d()(Tensor(rng.standard_normal((2, 5, 3, 3))))
        assert out.shape == (2, 5)

    def test_adaptive_avg_pool_layer(self):
        assert nn.AdaptiveAvgPool2d(1)(Tensor(np.zeros((1, 3, 7, 7)))).shape == (1, 3, 1, 1)

    def test_batchnorm_layer_running_stats_change_only_in_training(self, rng):
        bn = nn.BatchNorm2d(3)
        x = Tensor(rng.standard_normal((4, 3, 5, 5)) + 2.0)
        before = bn.running_mean.copy()
        bn.eval()
        bn(x)
        assert np.allclose(bn.running_mean, before)
        bn.train()
        bn(x)
        assert not np.allclose(bn.running_mean, before)

    def test_layernorm_layer(self, rng):
        ln = nn.LayerNorm(6)
        out = ln(Tensor(rng.standard_normal((3, 6))))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-7)

    def test_activation_layers(self, rng):
        x = Tensor(np.array([[-1.0, 2.0]]))
        assert np.allclose(nn.ReLU()(x).data, [[0, 2]])
        assert np.allclose(nn.ReLU6()(Tensor(np.array([[7.0]]))).data, [[6]])
        assert np.allclose(nn.Softmax()(x).data.sum(axis=-1), 1.0)
        assert nn.Sigmoid()(Tensor(np.array([0.0]))).data[0] == pytest.approx(0.5)
        assert nn.Tanh()(Tensor(np.array([0.0]))).data[0] == pytest.approx(0.0)
        assert np.exp(nn.LogSoftmax()(x).data).sum() == pytest.approx(1.0)
        assert nn.GELU()(Tensor(np.array([0.0]))).data[0] == pytest.approx(0.0, abs=1e-6)

    def test_dropout_validation(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)

    def test_flatten_and_identity(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4)))
        assert nn.Flatten()(x).shape == (2, 12)
        assert nn.Identity()(x) is x


class TestContainers:
    def test_sequential_applies_in_order(self, rng):
        model = nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng))
        assert model(Tensor(np.zeros((3, 4)))).shape == (3, 2)
        assert len(model) == 3
        assert isinstance(model[1], nn.ReLU)

    def test_sequential_append(self, rng):
        model = nn.Sequential(nn.Linear(2, 2, rng=rng))
        model.append(nn.ReLU())
        assert len(model) == 2

    def test_module_list(self, rng):
        modules = nn.ModuleList([nn.Linear(2, 2, rng=rng), nn.Linear(2, 2, rng=rng)])
        assert len(modules) == 2
        assert len(list(modules.parameters())) == 4
        with pytest.raises(RuntimeError):
            modules(Tensor(np.zeros((1, 2))))


class TestEmbeddingAttention:
    def test_embedding_shape(self, rng):
        emb = nn.Embedding(50, 8, rng=rng)
        assert emb(np.array([[1, 2, 3]])).shape == (1, 3, 8)

    def test_embedding_accepts_tensor_indices(self, rng):
        emb = nn.Embedding(10, 4, rng=rng)
        out = emb(Tensor(np.array([[1.0, 2.0]])))
        assert out.shape == (1, 2, 4)

    def test_attention_output_shape(self, rng):
        attention = nn.MultiHeadSelfAttention(16, 4, rng=rng)
        out = attention(Tensor(rng.standard_normal((2, 6, 16))))
        assert out.shape == (2, 6, 16)

    def test_attention_head_divisibility(self, rng):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(10, 3, rng=rng)

    def test_causal_mask_blocks_future(self, rng):
        """Changing a future token must not change earlier outputs under a causal mask."""
        attention = nn.MultiHeadSelfAttention(8, 2, rng=rng)
        base = rng.standard_normal((1, 5, 8))
        modified = base.copy()
        modified[0, 4] += 10.0
        out_base = attention(Tensor(base), causal=True).data
        out_modified = attention(Tensor(modified), causal=True).data
        assert np.allclose(out_base[0, :4], out_modified[0, :4])
        assert not np.allclose(out_base[0, 4], out_modified[0, 4])

    def test_transformer_encoder_layer(self, rng):
        layer = nn.TransformerEncoderLayer(16, 4, 32, dropout=0.0, rng=rng)
        x = Tensor(rng.standard_normal((2, 7, 16)), requires_grad=True)
        out = layer(x)
        assert out.shape == (2, 7, 16)
        out.sum().backward()
        assert x.grad is not None

    def test_positional_encoding_deterministic_and_added(self):
        pe = nn.PositionalEncoding(8, max_len=32)
        x = Tensor(np.zeros((1, 10, 8)))
        out = pe(x)
        assert out.shape == (1, 10, 8)
        assert not np.allclose(out.data, 0.0)

    def test_losses_modules(self, rng):
        logits = Tensor(rng.standard_normal((4, 3)))
        targets = np.array([0, 1, 2, 0])
        assert nn.CrossEntropyLoss()(logits, targets).item() > 0
        assert nn.MSELoss()(Tensor(np.ones(3)), np.zeros(3)).item() == pytest.approx(1.0)

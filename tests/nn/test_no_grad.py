"""Regression tests for ``nn.no_grad`` / inference mode.

Evaluation must not allocate an autograd graph: outputs produced under
``no_grad`` carry no ``_parents`` and no ``_backward`` closure, so the whole
forward activation chain is garbage-collectable immediately.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn import functional as F
from repro.core.masked_conv import InputSelector, MaskedConv2d
from repro.core.trainer import ClassificationTrainer
from repro.data import DataLoader


def assert_no_graph(tensor: Tensor) -> None:
    assert tensor._parents == ()
    assert tensor._backward is None
    assert not tensor.requires_grad


class TestNoGradContext:
    def test_ops_record_no_graph(self, rng):
        x = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        with nn.no_grad():
            out = (x * 2.0 + 1.0).relu().sum()
        assert_no_graph(out)

    def test_grad_mode_restored_even_on_error(self):
        assert nn.is_grad_enabled()
        with pytest.raises(RuntimeError):
            with nn.no_grad():
                assert not nn.is_grad_enabled()
                raise RuntimeError("boom")
        assert nn.is_grad_enabled()

    def test_reused_instance_nests_correctly(self):
        guard = nn.no_grad()
        with guard:
            with guard:
                assert not nn.is_grad_enabled()
            assert not nn.is_grad_enabled()
        assert nn.is_grad_enabled()

    def test_decorator_form(self, rng):
        @nn.no_grad()
        def infer(model, x):
            return model(x)

        model = nn.Linear(4, 2, rng=rng)
        out = infer(model, Tensor(rng.standard_normal((3, 4))))
        assert_no_graph(out)

    def test_backward_outside_context_unaffected(self, rng):
        x = Tensor(rng.standard_normal(4), requires_grad=True)
        with nn.no_grad():
            x.relu()  # must not poison later graph construction
        out = (x * x).sum()
        out.backward()
        assert x.grad is not None

    def test_model_forward_under_no_grad(self, rng, lenet):
        x = Tensor(rng.standard_normal((2, 1, 28, 28)).astype(np.float32))
        with nn.no_grad():
            logits = lenet(x)
        assert_no_graph(logits)

    def test_conv_and_pool_under_no_grad(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 8, 8)), requires_grad=True)
        w = Tensor(rng.standard_normal((2, 1, 3, 3)), requires_grad=True)
        with nn.no_grad():
            assert_no_graph(F.conv2d(x, w, padding=1, groups=2))
            assert_no_graph(F.conv2d(x, Tensor(rng.standard_normal((4, 2, 3, 3))), padding=1))
            assert_no_graph(F.max_pool2d(x, 2))


class TestEvaluationAllocatesNoGraph:
    def test_trainer_evaluate_outputs_have_no_graph(self, mnist_tiny, lenet):
        captured = []
        original_forward = lenet.forward

        def spying_forward(inputs):
            out = original_forward(inputs)
            captured.append(out)
            return out

        lenet.forward = spying_forward
        loader = DataLoader(mnist_tiny.validation, batch_size=8, shuffle=False)
        trainer = ClassificationTrainer(lenet, lr=0.01)
        loss, accuracy = trainer.evaluate(loader)
        assert captured, "evaluate never ran the model"
        for output in captured:
            assert_no_graph(output)
        assert np.isfinite(loss)

    def test_augmented_original_output_has_no_graph(self, mnist_tiny, amalgam_config):
        from repro.core import Amalgam
        from repro.models import LeNet

        amalgam = Amalgam(amalgam_config)
        model = LeNet(10, 1, 28, rng=np.random.default_rng(3))
        job = amalgam.prepare_image_job(model, mnist_tiny)
        batch = Tensor(job.train_data.dataset.samples[:2])
        out = job.augmented_model.original_output(batch)
        assert_no_graph(out)

    def test_training_still_builds_graph(self, rng, lenet):
        x = Tensor(rng.standard_normal((2, 1, 28, 28)).astype(np.float32))
        logits = lenet(x)
        assert logits.requires_grad
        assert logits._parents != ()


class TestMaskedLayersUnderNoGrad:
    def _positions(self, rng, channels, augmented_hw, target_hw):
        total = augmented_hw[0] * augmented_hw[1]
        kept = target_hw[0] * target_hw[1]
        return np.stack([rng.choice(total, size=kept, replace=False) for _ in range(channels)])

    def test_input_selector(self, rng):
        positions = self._positions(rng, 2, (6, 6), (4, 4))
        selector = InputSelector(positions, (4, 4))
        x = Tensor(rng.standard_normal((3, 2, 6, 6)), requires_grad=True)
        with nn.no_grad():
            out = selector(x)
        assert out.shape == (3, 2, 4, 4)
        assert_no_graph(out)

    def test_masked_conv2d(self, rng):
        positions = self._positions(rng, 2, (6, 6), (4, 4))
        masked = MaskedConv2d(2, 3, 3, positions, (4, 4), padding=1, rng=rng)
        x = Tensor(rng.standard_normal((2, 2, 6, 6)))
        with nn.no_grad():
            out = masked(x)
        assert out.shape == (2, 3, 4, 4)
        assert_no_graph(out)
        # ... and still trains outside the context.
        out_grad = masked(x)
        assert out_grad.requires_grad
        out_grad.sum().backward()
        assert masked.conv.weight.grad is not None


class TestThreadLocalGradMode:
    """Grad mode is per-thread: serving workers under no_grad must not leak
    inference mode into (or inherit it from) other threads."""

    def test_no_grad_in_worker_does_not_affect_main_thread(self):
        import threading

        entered = threading.Event()
        release = threading.Event()
        states = {}

        def worker():
            with nn.no_grad():
                states["worker_inside"] = nn.is_grad_enabled()
                entered.set()
                release.wait(timeout=30)
            states["worker_after"] = nn.is_grad_enabled()

        thread = threading.Thread(target=worker)
        thread.start()
        assert entered.wait(timeout=30)
        # The worker sits inside no_grad right now; this thread must still
        # record graphs.
        assert nn.is_grad_enabled()
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).sum()
        assert y._backward is not None
        y.backward()
        assert np.array_equal(x.grad, np.full(3, 2.0))
        release.set()
        thread.join()
        assert states["worker_inside"] is False
        assert states["worker_after"] is True

    def test_shared_decorator_instance_is_thread_safe(self):
        import threading

        guard = nn.no_grad()  # one instance shared by all threads
        errors = []

        def worker():
            try:
                for _ in range(200):
                    with guard:
                        assert not nn.is_grad_enabled()
                    assert nn.is_grad_enabled()
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert nn.is_grad_enabled()

"""Equivalence tests for the vectorised grouped-convolution paths.

The seed implementation ran ``conv2d(groups > 1)`` as a Python-level loop of
dense convolutions concatenated along the channel axis.  That loop is kept
here as the *test oracle*: the batched einsum path (general groups) and the
stencil path (depthwise) must reproduce its forward values and gradients.
"""

import numpy as np
import pytest

from repro.nn import Tensor, concatenate
from repro.nn import functional as F


def per_group_reference(inputs: Tensor, weight: Tensor, bias, stride, padding, groups):
    """Seed-style grouped convolution: one dense conv per group, concatenated."""
    group_in = inputs.shape[1] // groups
    group_out = weight.shape[0] // groups
    outputs = []
    for g in range(groups):
        in_slice = inputs[:, g * group_in : (g + 1) * group_in]
        w_slice = weight[g * group_out : (g + 1) * group_out]
        b_slice = bias[g * group_out : (g + 1) * group_out] if bias is not None else None
        outputs.append(F.conv2d(in_slice, w_slice, b_slice, stride=stride, padding=padding))
    return concatenate(outputs, axis=1)


# (batch, in_channels, H, W, out_channels, kernel, stride, padding, groups)
SHAPES = [
    (2, 4, 9, 9, 6, 3, 1, 1, 2),       # two groups, asymmetric out channels
    (3, 6, 10, 12, 12, 5, 2, 2, 3),    # three groups, strided, 5x5 kernel
    (1, 4, 7, 7, 8, 1, 1, 0, 4),       # grouped pointwise (1x1)
    (2, 8, 8, 8, 8, 3, 1, 1, 8),       # depthwise
    (1, 16, 16, 16, 16, 3, 2, 1, 16),  # depthwise, strided (MobileNet shape)
    (2, 5, 11, 13, 5, 3, 3, 0, 5),     # depthwise, stride > 1, no padding
]


class TestGroupedConvEquivalence:
    @pytest.mark.parametrize("shape", SHAPES, ids=[f"g{s[-1]}k{s[5]}s{s[6]}" for s in SHAPES])
    @pytest.mark.parametrize("use_bias", [True, False])
    def test_forward_and_backward_match_per_group_loop(self, shape, use_bias, rng):
        batch, in_ch, height, width, out_ch, kernel, stride, padding, groups = shape
        x_data = rng.standard_normal((batch, in_ch, height, width))
        w_data = rng.standard_normal((out_ch, in_ch // groups, kernel, kernel))
        b_data = rng.standard_normal(out_ch) if use_bias else None

        x_fast = Tensor(x_data, requires_grad=True)
        w_fast = Tensor(w_data, requires_grad=True)
        b_fast = Tensor(b_data, requires_grad=True) if use_bias else None
        x_ref = Tensor(x_data, requires_grad=True)
        w_ref = Tensor(w_data, requires_grad=True)
        b_ref = Tensor(b_data, requires_grad=True) if use_bias else None

        fast = F.conv2d(x_fast, w_fast, b_fast, stride=stride, padding=padding, groups=groups)
        reference = per_group_reference(x_ref, w_ref, b_ref, stride, padding, groups)
        assert fast.shape == reference.shape
        assert np.allclose(fast.data, reference.data, atol=1e-5)

        upstream = rng.standard_normal(fast.shape)
        fast.backward(upstream)
        reference.backward(upstream)
        assert np.allclose(x_fast.grad, x_ref.grad, atol=1e-5)
        assert np.allclose(w_fast.grad, w_ref.grad, atol=1e-5)
        if use_bias:
            assert np.allclose(b_fast.grad, b_ref.grad, atol=1e-5)

    def test_float32_grouped_conv_close_to_float64(self, rng):
        """The float32 fast path tracks the float64 oracle to single precision."""
        x_data = rng.standard_normal((2, 8, 9, 9))
        w_data = rng.standard_normal((8, 1, 3, 3))
        x32 = Tensor(x_data.astype(np.float32), requires_grad=True)
        w32 = Tensor(w_data.astype(np.float32), requires_grad=True)
        out32 = F.conv2d(x32, w32, None, padding=1, groups=8)
        out64 = per_group_reference(Tensor(x_data), Tensor(w_data), None, (1, 1), (1, 1), 8)
        assert out32.dtype == np.float32
        assert np.allclose(out32.data, out64.data, atol=1e-4)

    def test_gradients_match_finite_difference(self, rng):
        from ..helpers import finite_difference

        x_data = rng.standard_normal((1, 4, 6, 6))
        w_data = rng.standard_normal((4, 2, 3, 3))
        x = Tensor(x_data, requires_grad=True)
        w = Tensor(w_data, requires_grad=True)
        (F.conv2d(x, w, padding=1, groups=2) ** 2).sum().backward()

        def loss():
            return float((F.conv2d(Tensor(x_data), Tensor(w_data), padding=1, groups=2).data ** 2).sum())

        assert finite_difference(loss, w_data, (3, 1, 0, 2)) == pytest.approx(
            w.grad[3, 1, 0, 2], rel=1e-4)
        assert finite_difference(loss, x_data, (0, 2, 4, 1)) == pytest.approx(
            x.grad[0, 2, 4, 1], rel=1e-4)

    def test_depthwise_finite_difference(self, rng):
        from ..helpers import finite_difference

        x_data = rng.standard_normal((2, 3, 6, 6))
        w_data = rng.standard_normal((3, 1, 3, 3))
        x = Tensor(x_data, requires_grad=True)
        w = Tensor(w_data, requires_grad=True)
        (F.conv2d(x, w, stride=2, padding=1, groups=3) ** 2).sum().backward()

        def loss():
            return float((F.conv2d(Tensor(x_data), Tensor(w_data),
                                   stride=2, padding=1, groups=3).data ** 2).sum())

        assert finite_difference(loss, w_data, (2, 0, 1, 1)) == pytest.approx(
            w.grad[2, 0, 1, 1], rel=1e-4)
        assert finite_difference(loss, x_data, (1, 1, 3, 2)) == pytest.approx(
            x.grad[1, 1, 3, 2], rel=1e-4)

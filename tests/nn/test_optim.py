"""Tests for optimizers and learning-rate schedulers."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn.layers.module import Parameter
from repro.nn.optim import SGD, Adam, CosineAnnealingLR, StepLR


def quadratic_loss(parameter: Parameter) -> Tensor:
    """Simple convex objective ||p - 3||^2 with minimum at 3."""
    diff = parameter - Tensor(np.full(parameter.shape, 3.0))
    return (diff * diff).sum()


class TestSGD:
    def test_single_step_matches_formula(self):
        p = Parameter(np.array([1.0]))
        optimizer = SGD([p], lr=0.1)
        quadratic_loss(p).backward()
        optimizer.step()
        # gradient of (p-3)^2 at 1 is -4, update = -lr*grad = +0.4
        assert p.data[0] == pytest.approx(1.4)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([0.0, 10.0]))
        optimizer = SGD([p], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            quadratic_loss(p).backward()
            optimizer.step()
        assert np.allclose(p.data, 3.0, atol=1e-3)

    def test_momentum_accelerates(self):
        plain = Parameter(np.array([0.0]))
        momentum = Parameter(np.array([0.0]))
        opt_plain = SGD([plain], lr=0.01)
        opt_momentum = SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(30):
            opt_plain.zero_grad()
            quadratic_loss(plain).backward()
            opt_plain.step()
            opt_momentum.zero_grad()
            quadratic_loss(momentum).backward()
            opt_momentum.step()
        assert abs(momentum.data[0] - 3.0) < abs(plain.data[0] - 3.0)

    def test_weight_decay_shrinks_parameters(self):
        p = Parameter(np.array([5.0]))
        optimizer = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0])
        optimizer.step()
        assert p.data[0] < 5.0

    def test_skips_parameters_without_gradient(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        assert p.data[0] == 1.0

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.array([1.0]))], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([-5.0]))
        optimizer = Adam([p], lr=0.2)
        for _ in range(200):
            optimizer.zero_grad()
            quadratic_loss(p).backward()
            optimizer.step()
        assert p.data[0] == pytest.approx(3.0, abs=1e-2)

    def test_first_step_magnitude_close_to_lr(self):
        p = Parameter(np.array([0.0]))
        optimizer = Adam([p], lr=0.1)
        quadratic_loss(p).backward()
        optimizer.step()
        assert abs(p.data[0]) == pytest.approx(0.1, rel=1e-3)

    def test_weight_decay(self):
        p = Parameter(np.array([5.0]))
        optimizer = Adam([p], lr=0.1, weight_decay=1.0)
        p.grad = np.array([0.0])
        optimizer.step()
        assert p.data[0] < 5.0

    def test_trains_linear_layer_faster_than_no_training(self, rng):
        layer = nn.Linear(10, 2, rng=rng)
        data = rng.standard_normal((32, 10))
        targets = (data[:, 0] > 0).astype(int)
        initial = nn.functional.cross_entropy(layer(Tensor(data)), targets).item()
        optimizer = Adam(layer.parameters(), lr=0.05)
        for _ in range(50):
            optimizer.zero_grad()
            nn.functional.cross_entropy(layer(Tensor(data)), targets).backward()
            optimizer.step()
        final = nn.functional.cross_entropy(layer(Tensor(data)), targets).item()
        assert final < initial * 0.5


class TestSchedulers:
    def test_step_lr_decays_at_boundaries(self):
        optimizer = SGD([Parameter(np.array([1.0]))], lr=1.0)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            scheduler.step()
            lrs.append(optimizer.lr)
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_cosine_annealing_reaches_min(self):
        optimizer = SGD([Parameter(np.array([1.0]))], lr=1.0)
        scheduler = CosineAnnealingLR(optimizer, total_epochs=10, min_lr=0.0)
        for _ in range(10):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.0, abs=1e-9)

    def test_cosine_annealing_monotone_decrease(self):
        optimizer = SGD([Parameter(np.array([1.0]))], lr=1.0)
        scheduler = CosineAnnealingLR(optimizer, total_epochs=8)
        previous = optimizer.lr
        for _ in range(8):
            scheduler.step()
            assert optimizer.lr <= previous + 1e-12
            previous = optimizer.lr

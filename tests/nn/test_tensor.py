"""Tests for the autograd Tensor: arithmetic, broadcasting, reductions, backward."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, concatenate, stack

from ..helpers import finite_difference


class TestConstruction:
    def test_wraps_numpy_array(self):
        t = Tensor(np.arange(6).reshape(2, 3))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6

    def test_wraps_scalars_and_lists(self):
        assert Tensor(3.0).shape == ()
        assert Tensor([1.0, 2.0]).shape == (2,)

    def test_requires_grad_default_false(self):
        assert not Tensor(np.ones(3)).requires_grad
        assert Tensor(np.ones(3), requires_grad=True).requires_grad

    def test_zeros_ones_randn_factories(self):
        assert np.all(Tensor.zeros(2, 3).data == 0)
        assert np.all(Tensor.ones(4).data == 1)
        r = Tensor.randn(5, 5, rng=np.random.default_rng(0))
        assert r.shape == (5, 5)

    def test_ensure_passes_through_tensors(self):
        t = Tensor([1.0])
        assert Tensor.ensure(t) is t
        assert isinstance(Tensor.ensure([1.0, 2.0]), Tensor)

    def test_detach_cuts_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = (t * 2).detach()
        assert not d.requires_grad

    def test_item_on_scalar(self):
        assert Tensor(np.array([3.5])).item() == pytest.approx(3.5)

    def test_repr_mentions_shape(self):
        assert "shape=(2, 3)" in repr(Tensor(np.zeros((2, 3))))


class TestArithmetic:
    def test_add_sub_mul_div_values(self):
        a = Tensor(np.array([1.0, 2.0, 3.0]))
        b = Tensor(np.array([4.0, 5.0, 6.0]))
        assert np.allclose((a + b).data, [5, 7, 9])
        assert np.allclose((a - b).data, [-3, -3, -3])
        assert np.allclose((a * b).data, [4, 10, 18])
        assert np.allclose((a / b).data, [0.25, 0.4, 0.5])

    def test_scalar_operands(self):
        a = Tensor(np.array([1.0, 2.0]))
        assert np.allclose((a + 1).data, [2, 3])
        assert np.allclose((1 + a).data, [2, 3])
        assert np.allclose((2 * a).data, [2, 4])
        assert np.allclose((1 - a).data, [0, -1])
        assert np.allclose((2 / a).data, [2, 1])

    def test_neg_pow(self):
        a = Tensor(np.array([1.0, -2.0]))
        assert np.allclose((-a).data, [-1, 2])
        assert np.allclose((a ** 2).data, [1, 4])

    def test_add_backward(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1, 1])
        assert np.allclose(b.grad, [1, 1])

    def test_mul_backward(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [3, 4])
        assert np.allclose(b.grad, [1, 2])

    def test_div_backward(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([4.0, 8.0]), requires_grad=True)
        (a / b).sum().backward()
        assert np.allclose(a.grad, [0.25, 0.125])
        assert np.allclose(b.grad, [-1 / 16, -2 / 64])

    def test_broadcast_backward_sums_over_expanded_axes(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, [2, 2, 2])

    def test_gradient_accumulates_across_uses(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        (a * a).sum().backward()
        assert np.allclose(a.grad, [4.0])

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(2)).backward()

    def test_backward_non_scalar_needs_grad_argument(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            t.backward()
        t.backward(np.ones(3))
        assert np.allclose(t.grad, [1, 1, 1])


class TestMatmul:
    def test_matmul_values(self):
        a = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))
        b = Tensor(np.array([[5.0, 6.0], [7.0, 8.0]]))
        assert np.allclose((a @ b).data, [[19, 22], [43, 50]])

    def test_matmul_backward_matches_finite_difference(self, rng):
        a_data = rng.standard_normal((3, 4))
        b_data = rng.standard_normal((4, 2))
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        ((a @ b) ** 2).sum().backward()

        def loss():
            return float(((a_data @ b_data) ** 2).sum())

        numerical = finite_difference(loss, a_data, (1, 2))
        assert numerical == pytest.approx(a.grad[1, 2], rel=1e-4)
        numerical = finite_difference(loss, b_data, (0, 1))
        assert numerical == pytest.approx(b.grad[0, 1], rel=1e-4)

    def test_batched_matmul(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 4, 5)), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)


class TestReductions:
    def test_sum_axis_keepdims(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert t.sum().item() == 15
        assert np.allclose(t.sum(axis=0).data, [3, 5, 7])
        assert t.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean_and_var(self):
        t = Tensor(np.array([[1.0, 3.0], [2.0, 4.0]]))
        assert t.mean().item() == pytest.approx(2.5)
        assert np.allclose(t.mean(axis=0).data, [1.5, 3.5])
        assert t.var().item() == pytest.approx(np.var([1, 3, 2, 4]))

    def test_mean_multi_axis(self):
        t = Tensor(np.ones((2, 3, 4)))
        assert np.allclose(t.mean(axis=(1, 2)).data, [1.0, 1.0])

    def test_sum_backward_broadcasts(self):
        t = Tensor(np.ones((2, 3)), requires_grad=True)
        t.sum(axis=1).sum().backward()
        assert np.allclose(t.grad, np.ones((2, 3)))

    def test_max_forward_and_backward(self):
        t = Tensor(np.array([[1.0, 5.0], [3.0, 2.0]]), requires_grad=True)
        m = t.max(axis=1)
        assert np.allclose(m.data, [5, 3])
        m.sum().backward()
        assert np.allclose(t.grad, [[0, 1], [1, 0]])

    def test_max_ties_split_gradient(self):
        t = Tensor(np.array([2.0, 2.0]), requires_grad=True)
        t.max().backward()
        assert np.allclose(t.grad, [0.5, 0.5])


class TestShapeOps:
    def test_reshape_and_flatten(self):
        t = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        assert t.reshape(4, 3).shape == (4, 3)
        assert t.flatten().shape == (12,)
        assert t.reshape(2, 6).reshape(-1).shape == (12,)

    def test_reshape_backward(self):
        t = Tensor(np.arange(6.0), requires_grad=True)
        (t.reshape(2, 3) * 2).sum().backward()
        assert np.allclose(t.grad, np.full(6, 2.0))

    def test_transpose_default_and_axes(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        assert t.T.shape == (3, 2)
        t4 = Tensor(np.zeros((2, 3, 4, 5)))
        assert t4.transpose(0, 2, 1, 3).shape == (2, 4, 3, 5)

    def test_transpose_backward_restores_layout(self, rng):
        data = rng.standard_normal((2, 3, 4))
        t = Tensor(data, requires_grad=True)
        (t.transpose(2, 0, 1) * 3).sum().backward()
        assert t.grad.shape == (2, 3, 4)
        assert np.allclose(t.grad, 3.0)

    def test_swapaxes(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.swapaxes(-1, -2).shape == (2, 4, 3)

    def test_getitem_slice_and_fancy(self):
        t = Tensor(np.arange(10.0), requires_grad=True)
        assert np.allclose(t[2:5].data, [2, 3, 4])
        picked = t[np.array([1, 1, 3])]
        picked.sum().backward()
        assert t.grad[1] == pytest.approx(2.0)
        assert t.grad[3] == pytest.approx(1.0)

    def test_pad_forward_backward(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        p = t.pad([(1, 1), (0, 2)])
        assert p.shape == (4, 4)
        p.sum().backward()
        assert np.allclose(t.grad, np.ones((2, 2)))

    def test_concatenate(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.zeros((3, 2)), requires_grad=True)
        c = concatenate([a, b], axis=0)
        assert c.shape == (5, 2)
        c.sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, 1.0)

    def test_stack(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        s = stack([a, b], axis=0)
        assert s.shape == (2, 3)
        (s * Tensor(np.array([[1.0, 1, 1], [2, 2, 2]]))).sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, 2.0)


class TestNonlinearities:
    @pytest.mark.parametrize("name", ["exp", "log", "tanh", "sigmoid", "relu", "abs", "sqrt"])
    def test_elementwise_backward_matches_finite_difference(self, name, rng):
        data = np.abs(rng.standard_normal(5)) + 0.5  # positive for log/sqrt
        t = Tensor(data, requires_grad=True)
        out = getattr(t, name)()
        out.sum().backward()

        def loss():
            return float(getattr(Tensor(data), name)().sum().item())

        numerical = finite_difference(loss, data, (2,))
        assert numerical == pytest.approx(t.grad[2], rel=1e-4, abs=1e-6)

    def test_relu_zeroes_negative(self):
        t = Tensor(np.array([-1.0, 0.0, 2.0]), requires_grad=True)
        out = t.relu()
        assert np.allclose(out.data, [0, 0, 2])
        out.sum().backward()
        assert np.allclose(t.grad, [0, 0, 1])

    def test_clip_gradient_masking(self):
        t = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        t.clip(0.0, 1.0).sum().backward()
        assert np.allclose(t.grad, [0, 1, 0])

    def test_argmax(self):
        t = Tensor(np.array([[1.0, 3.0], [5.0, 2.0]]))
        assert np.array_equal(t.argmax(axis=1), [1, 0])


class TestHypothesisProperties:
    @given(st.lists(st.floats(-10, 10), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_sum_matches_numpy(self, values):
        t = Tensor(np.array(values))
        assert t.sum().item() == pytest.approx(float(np.sum(values)), rel=1e-9, abs=1e-9)

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_addition_gradient_is_ones(self, rows, cols):
        t = Tensor(np.random.default_rng(0).standard_normal((rows, cols)),
                   requires_grad=True)
        (t + 1.0).sum().backward()
        assert np.allclose(t.grad, np.ones((rows, cols)))

    @given(st.integers(2, 6), st.integers(2, 6), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_matmul_shape(self, a, b, c):
        left = Tensor(np.zeros((a, b)))
        right = Tensor(np.zeros((b, c)))
        assert (left @ right).shape == (a, c)

    @given(st.floats(0.1, 5.0))
    @settings(max_examples=25, deadline=None)
    def test_exp_log_roundtrip(self, value):
        t = Tensor(np.array([value]))
        assert t.exp().log().item() == pytest.approx(value, rel=1e-9)

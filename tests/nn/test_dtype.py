"""Dtype-contract tests for the float32 compute pipeline.

The substrate's contract: float32 inputs stay float32 through every op in
the hot path, parameters / gradients / optimizer state share one dtype, and
``set_default_dtype(np.float64)`` restores the seed behaviour globally.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn import functional as F


@pytest.fixture
def restore_default_dtype():
    previous = nn.get_default_dtype()
    yield
    nn.set_default_dtype(previous)


class TestDefaultDtypeAPI:
    def test_default_is_float32(self):
        assert nn.get_default_dtype() == np.float32

    def test_set_returns_previous_and_applies(self, restore_default_dtype):
        previous = nn.set_default_dtype(np.float64)
        assert previous == np.float32
        assert nn.get_default_dtype() == np.float64
        assert Tensor([1.0, 2.0]).dtype == np.float64
        assert Tensor.zeros(3).dtype == np.float64

    def test_rejects_non_float(self):
        with pytest.raises(ValueError):
            nn.set_default_dtype(np.int32)

    def test_float64_restores_seed_behaviour(self, restore_default_dtype, rng):
        nn.set_default_dtype(np.float64)
        layer = nn.Linear(4, 3, rng=rng)
        assert layer.weight.dtype == np.float64
        out = layer(Tensor(rng.standard_normal((2, 4))))
        assert out.dtype == np.float64


class TestTensorDtypePreservation:
    def test_float32_array_preserved(self):
        assert Tensor(np.ones(3, dtype=np.float32)).dtype == np.float32

    def test_float64_array_preserved(self):
        assert Tensor(np.ones(3, dtype=np.float64)).dtype == np.float64

    def test_lists_and_ints_land_on_default(self):
        assert Tensor([1, 2, 3]).dtype == nn.get_default_dtype()
        assert Tensor(np.arange(4)).dtype == nn.get_default_dtype()
        assert Tensor(1.5).dtype == nn.get_default_dtype()

    def test_explicit_dtype_wins(self):
        assert Tensor(np.ones(3, dtype=np.float32), dtype=np.float64).dtype == np.float64

    def test_full_reduction_keeps_dtype(self):
        t = Tensor(np.ones(5, dtype=np.float64))
        assert t.sum().dtype == np.float64
        t32 = Tensor(np.ones(5, dtype=np.float32))
        assert t32.sum().dtype == np.float32


class TestOpsStayFloat32:
    def test_conv_chain(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32), requires_grad=True)
        conv = nn.Conv2d(3, 4, 3, padding=1, rng=rng)
        out = conv(x)
        assert out.dtype == np.float32
        out.sum().backward()
        assert x.grad.dtype == np.float32
        assert conv.weight.grad.dtype == np.float32

    def test_depthwise_conv(self, rng):
        x = Tensor(rng.standard_normal((1, 4, 6, 6)).astype(np.float32), requires_grad=True)
        conv = nn.Conv2d(4, 4, 3, padding=1, groups=4, rng=rng)
        out = conv(x)
        assert out.dtype == np.float32
        out.sum().backward()
        assert x.grad.dtype == np.float32

    def test_linear_softmax_cross_entropy(self, rng):
        x = Tensor(rng.standard_normal((4, 8)).astype(np.float32), requires_grad=True)
        layer = nn.Linear(8, 5, rng=rng)
        logits = layer(x)
        assert logits.dtype == np.float32
        assert F.softmax(logits).dtype == np.float32
        assert F.log_softmax(logits).dtype == np.float32
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert loss.dtype == np.float32
        loss.backward()
        assert layer.weight.grad.dtype == np.float32
        assert x.grad.dtype == np.float32

    def test_attention_block(self, rng):
        block = nn.TransformerEncoderLayer(16, 2, 32, dropout=0.1, rng=rng)
        x = Tensor(rng.standard_normal((2, 6, 16)).astype(np.float32), requires_grad=True)
        out = block(x)
        assert out.dtype == np.float32
        out.sum().backward()
        assert x.grad.dtype == np.float32
        for _, parameter in block.named_parameters():
            assert parameter.grad is None or parameter.grad.dtype == np.float32

    def test_batch_norm_train_and_eval(self, rng):
        bn = nn.BatchNorm2d(3)
        x = Tensor(rng.standard_normal((2, 3, 4, 4)).astype(np.float32))
        assert bn(x).dtype == np.float32
        bn.eval()
        assert bn(x).dtype == np.float32
        assert bn.running_mean.dtype == nn.get_default_dtype()

    def test_dropout_and_pooling(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32), requires_grad=True)
        assert F.dropout(x, 0.5, training=True, rng=rng).dtype == np.float32
        assert F.max_pool2d(x, 2).dtype == np.float32
        assert F.avg_pool2d(x, 2).dtype == np.float32

    def test_data_transforms_feed_float32_tensors(self):
        from repro.data.transforms import to_float

        images = to_float(np.random.randint(0, 255, size=(2, 1, 4, 4), dtype=np.uint8))
        assert images.dtype == np.float32
        assert Tensor(images).dtype == np.float32


class TestOptimizerStateDtype:
    def test_sgd_momentum_matches_parameter_dtype(self, rng):
        layer = nn.Linear(4, 2, rng=rng)
        optimizer = nn.optim.SGD(layer.parameters(), lr=0.1, momentum=0.9)
        layer(Tensor(rng.standard_normal((3, 4)).astype(np.float32))).sum().backward()
        optimizer.step()
        for parameter, velocity in zip(optimizer.parameters, optimizer._velocity):
            assert parameter.data.dtype == np.float32
            assert velocity.dtype == parameter.data.dtype

    def test_adam_state_matches_parameter_dtype(self, rng):
        layer = nn.Linear(4, 2, rng=rng)
        optimizer = nn.optim.Adam(layer.parameters(), lr=1e-3)
        layer(Tensor(rng.standard_normal((3, 4)).astype(np.float32))).sum().backward()
        optimizer.step()
        for parameter, m, v in zip(optimizer.parameters, optimizer._m, optimizer._v):
            assert parameter.data.dtype == np.float32
            assert m.dtype == parameter.data.dtype
            assert v.dtype == parameter.data.dtype

    def test_float64_training_still_works(self, restore_default_dtype, rng):
        nn.set_default_dtype(np.float64)
        layer = nn.Linear(4, 2, rng=rng)
        optimizer = nn.optim.Adam(layer.parameters(), lr=1e-3)
        layer(Tensor(rng.standard_normal((3, 4)))).sum().backward()
        optimizer.step()
        assert layer.weight.data.dtype == np.float64
        assert optimizer._m[0].dtype == np.float64

    def test_serialization_round_trip_preserves_dtype(self, rng, tmp_path):
        layer = nn.Linear(4, 2, rng=rng)
        path = tmp_path / "layer.npz"
        nn.save_state(layer, path)
        state = nn.load_state(path)
        assert state["weight"].dtype == np.float32
        fresh = nn.Linear(4, 2, rng=rng)
        fresh.load_state_dict(state)
        assert fresh.weight.data.dtype == np.float32
        assert np.allclose(fresh.weight.data, layer.weight.data)

"""Tests for the baseline frameworks: MPC, HE, DISCO, TEE and the comparison harness."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.baselines import (
    FRAMEWORK_PROPERTIES,
    PAPER_SLOWDOWN_FACTORS,
    ChannelObfuscator,
    DiscoWrappedModel,
    EnclaveCostModel,
    HEContext,
    HEEncryptor,
    MPCCostModel,
    MPCProtocol,
    NoiseBudgetExhausted,
    encrypted_linear,
    estimate_crypten_epoch,
    estimate_pycrcnn_epoch,
    framework_table,
    run_framework_comparison,
    run_vanilla,
    format_comparison,
)
from repro.models import LeNet


class TestRegistry:
    def test_table1_contains_all_six_techniques(self):
        names = {row.name for row in FRAMEWORK_PROPERTIES}
        assert names == {"SMPC", "HE", "FL", "DP", "TEE", "Amalgam"}

    def test_amalgam_row_matches_paper_claims(self):
        amalgam = framework_table()["Amalgam"]
        assert amalgam.usability == "Simple"
        assert amalgam.overhead == "Low"
        assert not amalgam.accuracy_loss
        assert amalgam.gpu_acceleration
        assert amalgam.compatibility == "All models"

    def test_he_row_has_highest_overhead_and_no_gpu(self):
        he = framework_table()["HE"]
        assert he.overhead == "Very High"
        assert not he.gpu_acceleration

    def test_paper_slowdown_ordering(self):
        factors = PAPER_SLOWDOWN_FACTORS
        assert factors["vanilla"] == 1.0
        assert factors["amalgam"] < factors["disco"] < factors["cpu_tee"] < factors["crypten"]
        assert factors["pycrcnn"] > 10_000


class TestMPC:
    def test_share_reconstruct_roundtrip(self, rng):
        protocol = MPCProtocol(3, seed=0)
        values = rng.standard_normal((4, 5))
        assert np.allclose(protocol.reconstruct(protocol.share(values)), values, atol=1e-4)

    def test_individual_shares_do_not_reveal_values(self, rng):
        protocol = MPCProtocol(3, seed=0)
        values = np.full((100,), 0.5)
        shared = protocol.share(values)
        for share in shared.shares[:-1]:
            # Random shares are spread over a +-2^31 window; correlation with the
            # constant payload should be negligible.
            assert np.abs(share).mean() > 1e6

    def test_addition_of_shared_tensors(self):
        protocol = MPCProtocol(2, seed=1)
        a, b = np.array([1.0, 2.0]), np.array([0.5, -1.0])
        result = protocol.reconstruct(protocol.add(protocol.share(a), protocol.share(b)))
        assert np.allclose(result, a + b, atol=1e-4)

    def test_beaver_multiplication(self):
        protocol = MPCProtocol(3, seed=2)
        a, b = np.array([2.0, -3.0, 0.5]), np.array([4.0, 2.0, -2.0])
        result = protocol.reconstruct(protocol.mul(protocol.share(a), protocol.share(b)))
        assert np.allclose(result, a * b, atol=1e-3)

    def test_matmul_with_public_weight(self, rng):
        protocol = MPCProtocol(3, seed=3)
        x = rng.standard_normal((2, 3))
        w = rng.standard_normal((3, 4))
        result = protocol.reconstruct(protocol.matmul(protocol.share(x), w))
        assert np.allclose(result, x @ w, atol=1e-3)

    def test_communication_is_counted(self):
        protocol = MPCProtocol(3, seed=0)
        protocol.mul(protocol.share(np.ones(4)), protocol.share(np.ones(4)))
        assert protocol.communication_rounds > 0
        assert protocol.bytes_transferred > 0

    def test_requires_two_parties(self):
        with pytest.raises(ValueError):
            MPCProtocol(1)

    def test_cost_model_and_epoch_estimate(self):
        cost = MPCCostModel(num_parties=3)
        assert cost.epoch_time(10.0, 1000, 10**9) > 30.0
        estimate = estimate_crypten_epoch(vanilla_epoch_time=1.0, batches_per_epoch=10,
                                          model_parameters=10_000)
        assert estimate > 3.0  # at least the 3x compute multiplier


class TestHE:
    def test_encrypt_decrypt_roundtrip(self, rng):
        context = HEContext()
        encryptor = HEEncryptor(context)
        values = rng.standard_normal(16)
        assert np.allclose(encryptor.decrypt(encryptor.encrypt(values)), values)
        assert context.total_cost_seconds > 0

    def test_homomorphic_add_and_multiply(self):
        context = HEContext()
        encryptor = HEEncryptor(context)
        a = encryptor.encrypt(np.array([1.0, 2.0]))
        b = encryptor.encrypt(np.array([3.0, 4.0]))
        assert np.allclose(encryptor.decrypt(a.add(b)), [4.0, 6.0])
        assert np.allclose(encryptor.decrypt(a.multiply(b)), [3.0, 8.0])
        assert np.allclose(encryptor.decrypt(a.multiply_plain(np.array([2.0, 2.0]))), [2.0, 4.0])

    def test_noise_budget_exhaustion(self):
        context = HEContext(initial_noise_budget=40, multiply_noise_cost=18)
        encryptor = HEEncryptor(context)
        ciphertext = encryptor.encrypt(np.array([1.1]))
        ciphertext = ciphertext.square()
        with pytest.raises(NoiseBudgetExhausted):
            ciphertext.square().square()

    def test_encrypted_linear_layer(self, rng):
        context = HEContext()
        encryptor = HEEncryptor(context)
        x = rng.standard_normal(4)
        weight = rng.standard_normal((3, 4))
        bias = rng.standard_normal(3)
        out = encrypted_linear(encryptor.encrypt(x), weight, bias)
        assert np.allclose(encryptor.decrypt(out), weight @ x + bias)

    def test_operation_costs_accumulate(self):
        context = HEContext()
        encryptor = HEEncryptor(context)
        ciphertext = encryptor.encrypt(np.ones(100))
        before = context.total_cost_seconds
        ciphertext.multiply_plain(np.ones(100))
        assert context.total_cost_seconds > before
        assert context.op_counts["multiply_plain"] == 100

    def test_epoch_estimate_is_impractically_large(self):
        # 60k samples through LeNet-scale parameters: should be days, not minutes.
        estimate = estimate_pycrcnn_epoch(samples_per_epoch=60_000, model_parameters=61_706)
        assert estimate > 24 * 3600


class TestDiscoAndTEE:
    def test_channel_obfuscator_masks_channels(self, rng):
        obfuscator = ChannelObfuscator(4, drop_ratio=0.5, rng=np.random.default_rng(0))
        obfuscator.eval()
        x = Tensor(np.ones((2, 4, 3, 3)))
        out = obfuscator(x)
        assert out.shape == x.shape
        assert np.all(out.data <= 1.0 + 1e-9)

    def test_channel_obfuscator_validation(self):
        with pytest.raises(ValueError):
            ChannelObfuscator(4, drop_ratio=1.0)

    def test_disco_wrapped_model_trains(self, mnist_tiny, rng):
        model = LeNet(10, 1, 28, rng=rng)
        wrapped = DiscoWrappedModel(model, stem_channels=1, rng=np.random.default_rng(1))
        out = wrapped(Tensor(mnist_tiny.train.samples[:2].astype(float)))
        assert out.shape == (2, 10)

    def test_enclave_cost_model_no_overhead_when_fitting(self):
        cost = EnclaveCostModel()
        assert cost.epoch_time(10.0, cost.epc_bytes // 2) == 10.0

    def test_enclave_cost_model_adds_paging_overhead(self):
        cost = EnclaveCostModel()
        assert cost.epoch_time(10.0, cost.epc_bytes * 4) > 10.0


class TestComparisonHarness:
    def test_run_vanilla_baseline(self, mnist_tiny, rng):
        run = run_vanilla(LeNet(10, 1, 28, rng=rng), mnist_tiny, epochs=1, batch_size=16)
        assert run.measured
        assert run.epoch_seconds > 0
        assert 0.0 <= run.validation_accuracy <= 1.0

    def test_framework_comparison_shape_and_ranking(self):
        rows = run_framework_comparison(epochs=1, train_count=32, val_count=16, batch_size=16)
        by_name = {row.framework: row for row in rows}
        assert set(by_name) == {"vanilla", "amalgam", "disco", "crypten", "cpu_tee", "pycrcnn"}
        # Reproduced shape: vanilla is the fastest, PyCrCNN is out of reach,
        # Amalgam is slower than vanilla but orders of magnitude below MPC/FHE.
        assert by_name["vanilla"].slowdown_vs_vanilla == pytest.approx(1.0)
        assert by_name["amalgam"].slowdown_vs_vanilla >= 0.9
        assert by_name["pycrcnn"].slowdown_vs_vanilla > by_name["crypten"].slowdown_vs_vanilla
        assert by_name["crypten"].slowdown_vs_vanilla > by_name["amalgam"].slowdown_vs_vanilla
        assert not by_name["pycrcnn"].measured
        table = format_comparison(rows)
        assert "amalgam" in table and "pycrcnn" in table

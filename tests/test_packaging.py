"""Packaging and repo-hygiene pins.

A wheel built from this tree must actually serve: every ``repro.*`` package —
including the nested ``repro.serve.cluster`` / ``repro.serve.middleware`` /
``repro.serve.gateway`` subpackages — has to be discovered by the
``pyproject.toml`` src-layout configuration, and every public module must
import cleanly from an installed-style path.  Plus the hygiene satellite:
no compiled artefacts (``__pycache__``, ``*.pyc``) may ever be tracked.
"""

from __future__ import annotations

import importlib
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def packages_on_disk() -> set:
    """Every directory under src/ that is a Python package."""
    found = set()
    for init in SRC.rglob("__init__.py"):
        relative = init.parent.relative_to(SRC)
        if "__pycache__" in relative.parts:
            continue
        found.add(".".join(relative.parts))
    return found


def modules_on_disk() -> list:
    """Every importable module name under src/ (packages + submodules)."""
    names = []
    for path in sorted(SRC.rglob("*.py")):
        relative = path.relative_to(SRC)
        if "__pycache__" in relative.parts:
            continue
        parts = list(relative.parts)
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][: -len(".py")]
        names.append(".".join(parts))
    return names


class TestPackageDiscovery:
    def test_setuptools_discovers_every_package(self):
        """`pip install .` must ship exactly the packages that exist on disk."""
        find_packages = pytest.importorskip("setuptools").find_packages
        discovered = set(find_packages(where=str(SRC)))
        on_disk = packages_on_disk()
        missing = on_disk - discovered
        assert not missing, f"packages on disk that an install would drop: {sorted(missing)}"
        phantom = discovered - on_disk
        assert not phantom, f"discovered packages with no __init__.py: {sorted(phantom)}"

    def test_serve_subpackages_are_present(self):
        """The serving tree's nested packages — the ones a naive setup() config
        silently drops — are all real packages on disk."""
        on_disk = packages_on_disk()
        for package in (
            "repro",
            "repro.serve",
            "repro.serve.cluster",
            "repro.serve.middleware",
            "repro.serve.gateway",
        ):
            assert package in on_disk, f"{package} lost its __init__.py"

    def test_pyproject_declares_src_layout(self):
        pyproject = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
        assert "[tool.setuptools.packages.find]" in pyproject
        assert 'where = ["src"]' in pyproject
        assert "[project]" in pyproject

    def test_every_module_imports(self):
        """Installed-style import smoke: every public module loads."""
        failures = []
        for name in modules_on_disk():
            try:
                importlib.import_module(name)
            except Exception as error:  # noqa: BLE001 - collected for the report
                failures.append(f"{name}: {error!r}")
        assert not failures, "modules that fail to import:\n" + "\n".join(failures)


class TestRepoHygiene:
    def test_no_compiled_artifacts_tracked(self):
        """``__pycache__``/``*.pyc`` must never be committed (gitignore pin)."""
        try:
            tracked = subprocess.run(
                ["git", "ls-files"],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                timeout=30,
                check=True,
            ).stdout.splitlines()
        except (OSError, subprocess.SubprocessError):
            pytest.skip("not a git checkout")
        offenders = [
            path for path in tracked if "__pycache__" in path or path.endswith(".pyc")
        ]
        assert not offenders, f"compiled artefacts tracked by git: {offenders}"

    def test_gitignore_covers_pycache(self):
        gitignore = (REPO_ROOT / ".gitignore").read_text(encoding="utf-8").splitlines()
        assert "__pycache__/" in gitignore
        assert "*.pyc" in gitignore

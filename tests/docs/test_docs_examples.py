"""The docs gate: every fenced example in README.md and docs/ must run.

Documentation drifts the moment it stops being executed.  This suite
extracts every fenced ``python`` block and ``exec``s it from the repo root,
and parses every fenced ``toml`` block — validating the ones that declare
middleware stacks through the real spec parser.  A doc snippet that names a
function that no longer exists, constructs a server with a stale signature,
or shows a TOML stack the parser rejects fails CI here, with the file and
fence line in the test id.

Blocks tagged with any other language (``bash``, untagged ASCII diagrams)
are out of scope: shell commands are exercised by the example/benchmark CI
jobs themselves.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List

import pytest

from repro.serve.middleware import config as config_module

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_PATHS = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)

_FENCE = re.compile(r"^```(\w*)\s*$")


@dataclass(frozen=True)
class Fence:
    """One fenced code block, addressed back to its source line."""

    path: Path
    line: int  # 1-based line of the opening fence
    language: str
    code: str

    @property
    def id(self) -> str:
        return f"{self.path.relative_to(REPO_ROOT)}:L{self.line}"


def iter_fences(path: Path) -> Iterator[Fence]:
    language: str | None = None
    start = 0
    body: List[str] = []
    for number, raw in enumerate(path.read_text().splitlines(), start=1):
        match = _FENCE.match(raw.strip())
        if match is None:
            if language is not None:
                body.append(raw)
            continue
        if language is None:
            language, start, body = match.group(1).lower(), number, []
        else:
            yield Fence(path, start, language, "\n".join(body) + "\n")
            language = None
    assert language is None, f"{path.name}: unterminated code fence at line {start}"


def fences(language: str) -> List[Fence]:
    found = [
        fence
        for path in DOC_PATHS
        if path.exists()
        for fence in iter_fences(path)
        if fence.language == language
    ]
    assert found, f"no ```{language} blocks found under {REPO_ROOT}"
    return found


def needs_toml_parser(code: str) -> bool:
    """Does this snippet parse TOML text (vs dict specs, which always work)?"""
    return "load_spec" in code or "spec_from_toml" in code or '"""' in code


@pytest.mark.parametrize(
    "fence", fences("python"), ids=lambda fence: fence.id
)
def test_python_examples_execute(fence, monkeypatch):
    if config_module.tomllib is None and needs_toml_parser(fence.code):
        pytest.skip("no TOML parser on this interpreter")
    monkeypatch.chdir(REPO_ROOT)  # snippets use repo-root-relative paths
    namespace = {"__name__": f"docs_example_{fence.line}"}
    exec(compile(fence.code, fence.id, "exec"), namespace)


@pytest.mark.parametrize("fence", fences("toml"), ids=lambda fence: fence.id)
def test_toml_examples_parse(fence):
    if config_module.tomllib is None:
        pytest.skip("no TOML parser on this interpreter")
    parsed = config_module.tomllib.loads(fence.code)
    if "stacks" in parsed:
        config_module.parse_stack_spec(parsed)  # a stack spec must validate


def test_shipped_stack_spec_is_valid():
    """The example TOML file the demo loads must always parse and build."""
    if config_module.tomllib is None:
        pytest.skip("no TOML parser on this interpreter")
    from repro.serve import ModelRegistry

    spec = config_module.load_spec(REPO_ROOT / "examples" / "serving_stacks.toml")
    assert "trial" in spec.stacks
    config_module.build_dispatcher(
        spec, resources={"registry": ModelRegistry(capacity=2)}
    )

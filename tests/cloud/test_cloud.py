"""Tests for the simulated cloud: bundles, environment and round-trip sessions."""

import numpy as np
import pytest

from repro.cloud import (
    CloudEnvironment,
    CloudSession,
    bundle_manifest,
    pack_arrays,
    pack_model,
    unpack_into_model,
)
from repro.core import Amalgam
from repro.models import LeNet, TextClassifier, TransformerLM


@pytest.fixture
def image_job(mnist_tiny, amalgam_config):
    amalgam = Amalgam(amalgam_config)
    model = LeNet(10, 1, 28, rng=np.random.default_rng(3))
    return amalgam.prepare_image_job(model, mnist_tiny)


class TestBundles:
    def test_pack_model_architecture_digest(self, image_job):
        bundle = pack_model(image_job.augmented_model, task="classification")
        assert bundle.size_bytes > 0
        assert bundle.architecture["task"] == "classification"
        assert bundle.architecture["total_parameters"] == sum(
            np.asarray(v).size for v in image_job.augmented_model.state_dict().values())

    def test_model_bundle_does_not_reveal_original_index(self, image_job):
        bundle = pack_model(image_job.augmented_model, task="classification")
        assert "original" not in str(bundle.architecture).lower()

    def test_bundle_roundtrip_restores_parameters(self, image_job):
        bundle = pack_model(image_job.augmented_model, task="classification")
        # Perturb, then unpack the bundle back in.
        for parameter in image_job.augmented_model.parameters():
            parameter.data += 1.0
        unpack_into_model(bundle, image_job.augmented_model)
        restored = pack_model(image_job.augmented_model, task="classification")
        assert restored.checksum == bundle.checksum

    def test_pack_arrays_and_manifest(self, mnist_tiny):
        bundle = pack_arrays({"name": "x", "kind": "image"},
                             samples=mnist_tiny.train.samples,
                             labels=mnist_tiny.train.labels)
        arrays = bundle.arrays()
        assert np.array_equal(arrays["samples"], mnist_tiny.train.samples)
        manifest = bundle_manifest(dataset=bundle)
        assert "sha256" in manifest

    def test_checksums_differ_for_different_content(self, mnist_tiny):
        a = pack_arrays({"name": "a"}, labels=mnist_tiny.train.labels)
        b = pack_arrays({"name": "b"}, labels=mnist_tiny.train.labels + 1)
        assert a.checksum != b.checksum


class TestCloudEnvironment:
    def test_classification_job_records_observation(self, image_job):
        environment = CloudEnvironment(record_gradients=True, max_gradient_snapshots=1)
        session = CloudSession(environment)
        receipt = environment.train_classification(
            image_job.augmented_model,
            session.bundle_model(image_job),
            session.bundle_dataset(image_job),
            num_classes=10, epochs=1, lr=0.05, batch_size=16)
        assert receipt.observation.epochs == 1
        assert receipt.observation.wall_clock_seconds > 0
        assert len(receipt.observation.gradient_snapshots) == 1
        assert environment.jobs

    def test_observation_summary_fields(self, image_job):
        environment = CloudEnvironment()
        session = CloudSession(environment)
        receipt = environment.train_classification(
            image_job.augmented_model, session.bundle_model(image_job),
            session.bundle_dataset(image_job), num_classes=10, epochs=1, batch_size=16)
        summary = receipt.observation.summary()
        assert set(summary) == {"total_parameters", "epochs", "wall_clock_seconds",
                                "gradient_snapshots"}


class TestCloudSession:
    def test_image_round_trip(self, image_job, mnist_tiny):
        session = CloudSession(CloudEnvironment())
        result = session.run(image_job, lambda: LeNet(10, 1, 28), epochs=1, lr=0.05,
                             batch_size=16)
        assert result.uploaded_model_bytes > 0
        assert result.uploaded_dataset_bytes > 0
        assert result.extraction.model.num_parameters() == 61_706
        assert result.training.history.get("train_loss")

    def test_round_trip_extraction_matches_local_augmented_model(self, image_job):
        session = CloudSession(CloudEnvironment())
        result = session.run(image_job, lambda: LeNet(10, 1, 28), epochs=1, lr=0.05,
                             batch_size=16)
        prefix = image_job.augmented_model.original_parameter_prefix()
        augmented_state = image_job.augmented_model.state_dict()
        for name, value in result.extraction.model.state_dict().items():
            assert np.array_equal(augmented_state[prefix + name], value)

    def test_text_round_trip(self, agnews_tiny, amalgam_config):
        split, vocab = agnews_tiny
        amalgam = Amalgam(amalgam_config)
        model = TextClassifier(len(vocab), 16, 4, rng=np.random.default_rng(1))
        job = amalgam.prepare_text_job(model, split, vocab_size=len(vocab))
        session = CloudSession(CloudEnvironment())
        result = session.run(job, lambda: TextClassifier(len(vocab), 16, 4),
                             epochs=1, lr=0.2, batch_size=16)
        assert result.extraction.model.num_parameters() == model.num_parameters()

    def test_lm_round_trip(self, wikitext_tiny, amalgam_config):
        train, validation, vocab = wikitext_tiny
        amalgam = Amalgam(amalgam_config)
        model = TransformerLM(len(vocab), 16, 2, 1, 32, dropout=0.0,
                              rng=np.random.default_rng(2))
        job = amalgam.prepare_lm_job(model, train, validation, batch_rows=2, seq_len=10)
        session = CloudSession(CloudEnvironment())
        result = session.run(job, lambda: TransformerLM(len(vocab), 16, 2, 1, 32, dropout=0.0),
                             epochs=1, lr=0.005, optimizer="adam")
        assert result.extraction.model.num_parameters() == model.num_parameters()

    def test_dataset_bundle_does_not_contain_plan_positions(self, image_job):
        """The uploaded dataset holds only augmented pixels and labels."""
        session = CloudSession(CloudEnvironment())
        dataset_bundle = session.bundle_dataset(image_job)
        positions = image_job.secrets.dataset_plan.channel_positions
        for value in dataset_bundle.arrays().values():
            if value.shape == positions.shape and value.dtype == positions.dtype:
                assert not np.array_equal(value, positions)

    def test_all_subnetworks_expose_indistinguishable_selectors(self, image_job):
        """Every sub-network in the uploaded model carries a selector buffer of
        the same shape, so the original one cannot be identified structurally —
        the property the paper's obfuscation relies on."""
        session = CloudSession(CloudEnvironment())
        state = session.bundle_model(image_job).state_dict()
        selector_shapes = {name: value.shape for name, value in state.items()
                           if name.endswith("selector.positions")}
        assert len(selector_shapes) == image_job.augmented_model.num_subnetworks
        assert len(set(selector_shapes.values())) == 1

"""Round-trip tests for cloud serialization across dtypes (serving satellite).

``pack_model``/``unpack_into_model`` and ``pack_arrays`` carry every served
artefact, so value/dtype fidelity across the wire is load-bearing for the
whole serving subsystem.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud import pack_arrays, pack_model, unpack_into_model
from repro.models import LeNet


def make_model(dtype=None, seed: int = 11) -> LeNet:
    model = LeNet(10, 1, 28, rng=np.random.default_rng(seed))
    if dtype is not None:
        for parameter in model.parameters():
            parameter.data = parameter.data.astype(dtype)
    return model


class TestModelBundleRoundTrip:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_parameters_survive_byte_exact(self, dtype):
        model = make_model(dtype)
        bundle = pack_model(model, task="classification")
        target = make_model(dtype, seed=99)
        unpack_into_model(bundle, target)
        want = model.state_dict()
        got = target.state_dict()
        assert set(got) == set(want)
        for name in want:
            assert got[name].dtype == want[name].dtype
            assert np.array_equal(got[name], want[name])

    def test_architecture_digest_matches_state(self):
        model = make_model()
        bundle = pack_model(model, task="classification")
        state = model.state_dict()
        assert bundle.architecture["task"] == "classification"
        assert bundle.architecture["parameters"] == {
            name: list(value.shape) for name, value in state.items()
        }
        assert bundle.architecture["total_parameters"] == sum(v.size for v in state.values())

    def test_checksum_is_content_addressed(self):
        first = pack_model(make_model(seed=1), task="classification")
        same = pack_model(make_model(seed=1), task="classification")
        other = pack_model(make_model(seed=2), task="classification")
        assert first.checksum == same.checksum
        assert first.checksum != other.checksum

    def test_shape_mismatch_rejected_on_unpack(self):
        bundle = pack_model(make_model(), task="classification")
        wrong = LeNet(10, 3, 28, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            unpack_into_model(bundle, wrong)


class TestArrayBundleRoundTrip:
    @pytest.mark.parametrize(
        "dtype",
        [np.float32, np.float64, np.int64, np.int32, np.uint8, np.bool_],
    )
    def test_arrays_survive_byte_exact(self, dtype):
        rng = np.random.default_rng(5)
        if np.issubdtype(dtype, np.floating):
            samples = rng.standard_normal((4, 3, 8, 8)).astype(dtype)
        elif dtype is np.bool_:
            samples = rng.integers(0, 2, size=(4, 3, 8, 8)).astype(dtype)
        else:
            samples = rng.integers(0, 100, size=(4, 3, 8, 8)).astype(dtype)
        labels = rng.integers(0, 10, size=4)
        bundle = pack_arrays({"name": "t", "kind": "image"}, samples=samples, labels=labels)
        arrays = bundle.arrays()
        assert set(arrays) == {"samples", "labels"}
        assert arrays["samples"].dtype == samples.dtype
        assert np.array_equal(arrays["samples"], samples)
        assert np.array_equal(arrays["labels"], labels)

    def test_description_is_copied_not_aliased(self):
        description = {"name": "t", "kind": "image"}
        bundle = pack_arrays(description, x=np.zeros(3))
        description["name"] = "mutated"
        assert bundle.description["name"] == "t"

    def test_size_bytes_matches_payload(self):
        bundle = pack_arrays({"name": "t"}, x=np.zeros((16, 16), np.float32))
        assert bundle.size_bytes == len(bundle.payload) > 0

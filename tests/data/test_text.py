"""Tests for the synthetic text datasets, vocabulary and batchify helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    batchify,
    build_vocabulary,
    lm_batches,
    make_agnews,
    make_wikitext2,
)


class TestVocabulary:
    def test_build_vocabulary_size_and_specials(self):
        vocab = build_vocabulary(50)
        assert len(vocab) == 50
        assert vocab.tokens[0] == "<unk>"

    def test_encode_decode_roundtrip(self):
        vocab = build_vocabulary(30)
        for token_id in (0, 5, 29):
            assert vocab.encode(vocab.decode(token_id)) == token_id

    def test_unknown_token_maps_to_unk(self):
        vocab = build_vocabulary(10)
        assert vocab.encode("definitely-not-a-token") == 0

    def test_tokens_are_unique(self):
        vocab = build_vocabulary(200)
        assert len(set(vocab.tokens)) == 200


class TestWikiText2:
    def test_shapes_and_vocab(self, wikitext_tiny):
        train, val, vocab = wikitext_tiny
        assert len(train) == 2_400
        assert len(val) == 600
        assert len(vocab) == 60
        assert train.tokens.max() < 60

    def test_deterministic_by_seed(self):
        a, _, _ = make_wikitext2(train_tokens=500, val_tokens=100, vocab_size=40, seed=8)
        b, _, _ = make_wikitext2(train_tokens=500, val_tokens=100, vocab_size=40, seed=8)
        assert np.array_equal(a.tokens, b.tokens)

    def test_markov_structure_is_predictable(self):
        """Successor entropy must be well below uniform — the LM has something to learn."""
        train, _, _ = make_wikitext2(train_tokens=5000, val_tokens=100, vocab_size=50, seed=1)
        tokens = train.tokens
        pairs = {}
        for current, following in zip(tokens[:-1], tokens[1:]):
            pairs.setdefault(int(current), set()).add(int(following))
        average_branching = np.mean([len(v) for v in pairs.values()])
        assert average_branching < 25  # far fewer successors than the 47 content tokens

    def test_unknown_scale_raises(self):
        with pytest.raises(KeyError):
            make_wikitext2(scale="giant")


class TestAGNews:
    def test_shapes_and_classes(self, agnews_tiny):
        split, vocab = agnews_tiny
        assert split.train.samples.shape == (48, 32)
        assert split.info.num_classes == 4
        assert split.info.vocab_size == 120
        assert set(np.unique(split.train.labels)).issubset({0, 1, 2, 3})

    def test_class_token_distributions_differ(self):
        split, _ = make_agnews(train_samples=200, val_samples=10, vocab_size=200, seed=2)
        samples, labels = split.train.samples, split.train.labels
        means = [samples[labels == label].mean() for label in range(4)
                 if np.any(labels == label)]
        assert np.std(means) > 1.0  # classes draw from different vocabulary slices

    def test_deterministic_by_seed(self):
        a, _ = make_agnews(train_samples=16, val_samples=4, vocab_size=50, seed=3)
        b, _ = make_agnews(train_samples=16, val_samples=4, vocab_size=50, seed=3)
        assert np.array_equal(a.train.samples, b.train.samples)

    def test_sequence_length_parameter(self):
        split, _ = make_agnews(train_samples=8, val_samples=2, vocab_size=50,
                               sequence_length=48, seed=0)
        assert split.train.samples.shape[1] == 48


class TestBatchify:
    def test_batchify_shape_and_content(self):
        stream = np.arange(103)
        rows = batchify(stream, 4)
        assert rows.shape == (4, 25)
        assert np.array_equal(rows.reshape(-1)[:25], np.arange(25))

    def test_batchify_drops_trailing_tokens(self):
        rows = batchify(np.arange(10), 3)
        assert rows.shape == (3, 3)

    def test_lm_batches_inputs_targets_shifted(self):
        rows = batchify(np.arange(40), 2)
        blocks = list(lm_batches(rows, 5))
        inputs, targets = blocks[0]
        assert np.array_equal(targets[:, :-1], inputs[:, 1:])
        assert inputs.shape == targets.shape

    def test_lm_batches_cover_stream(self):
        rows = batchify(np.arange(42), 2)
        total = sum(inputs.shape[1] for inputs, _ in lm_batches(rows, 5))
        assert total == rows.shape[1] - 1

    @given(st.integers(2, 8), st.integers(20, 100))
    @settings(max_examples=15, deadline=None)
    def test_batchify_never_exceeds_stream(self, rows, length):
        batched = batchify(np.arange(length), rows)
        assert batched.size <= length
        assert batched.shape[0] == rows

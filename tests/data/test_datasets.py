"""Tests for dataset abstractions, loaders and the synthetic image generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    ArrayDataset,
    DataLoader,
    DatasetInfo,
    SPECS,
    make_cifar10,
    make_cifar100,
    make_image_dataset,
    make_imagenette,
    make_mnist,
)
from repro.utils.rng import get_rng


class TestArrayDataset:
    def test_length_and_indexing(self, mnist_tiny):
        dataset = mnist_tiny.train
        assert len(dataset) == 32
        sample, label = dataset[0]
        assert sample.shape == (1, 28, 28)
        assert 0 <= label < 10

    def test_mismatched_lengths_raise(self):
        info = DatasetInfo("x", "image", 2, (1, 2, 2))
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1, 2, 2)), np.zeros(2), info)

    def test_subset(self, mnist_tiny):
        subset = mnist_tiny.train.subset(5)
        assert len(subset) == 5
        assert subset.info is mnist_tiny.train.info

    def test_nbytes_positive(self, mnist_tiny):
        assert mnist_tiny.train.nbytes() > 0

    def test_iteration(self, mnist_tiny):
        count = sum(1 for _ in mnist_tiny.train)
        assert count == len(mnist_tiny.train)

    def test_info_flags(self, mnist_tiny, agnews_tiny):
        assert mnist_tiny.info.is_image and not mnist_tiny.info.is_text
        assert agnews_tiny[0].info.is_text


class TestDataLoader:
    def test_batches_cover_dataset(self, mnist_tiny):
        loader = DataLoader(mnist_tiny.train, batch_size=10)
        total = sum(len(labels) for _, labels in loader)
        assert total == len(mnist_tiny.train)
        assert len(loader) == 4  # 32 samples / 10 per batch, last partial

    def test_drop_last(self, mnist_tiny):
        loader = DataLoader(mnist_tiny.train, batch_size=10, drop_last=True)
        assert len(loader) == 3
        assert all(len(labels) == 10 for _, labels in loader)

    def test_shuffle_is_deterministic_given_rng(self, mnist_tiny):
        first = [labels.tolist() for _, labels in
                 DataLoader(mnist_tiny.train, 8, shuffle=True, rng=get_rng(3))]
        second = [labels.tolist() for _, labels in
                  DataLoader(mnist_tiny.train, 8, shuffle=True, rng=get_rng(3))]
        assert first == second

    def test_shuffle_changes_order(self, mnist_tiny):
        plain = [labels.tolist() for _, labels in DataLoader(mnist_tiny.train, 32)]
        shuffled = [labels.tolist() for _, labels in
                    DataLoader(mnist_tiny.train, 32, shuffle=True, rng=get_rng(1))]
        assert plain != shuffled

    def test_invalid_batch_size(self, mnist_tiny):
        with pytest.raises(ValueError):
            DataLoader(mnist_tiny.train, 0)


class TestSyntheticImages:
    @pytest.mark.parametrize("name,channels,size,classes", [
        ("mnist", 1, 28, 10),
        ("cifar10", 3, 32, 10),
        ("cifar100", 3, 32, 100),
    ])
    def test_geometry_matches_paper_datasets(self, name, channels, size, classes):
        split = make_image_dataset(name, train_count=8, val_count=4, seed=0)
        assert split.train.samples.shape == (8, channels, size, size)
        assert split.info.num_classes == classes

    def test_imagenette_geometry_and_resize(self):
        assert SPECS["imagenette"].height == 224
        split = make_imagenette(train_count=4, val_count=2, image_size=32, seed=0)
        assert split.train.samples.shape == (4, 3, 32, 32)

    def test_pixel_range(self, mnist_tiny):
        assert mnist_tiny.train.samples.min() >= 0.0
        assert mnist_tiny.train.samples.max() <= 1.0

    def test_determinism_by_seed(self):
        a = make_cifar10(train_count=4, val_count=2, seed=9)
        b = make_cifar10(train_count=4, val_count=2, seed=9)
        assert np.array_equal(a.train.samples, b.train.samples)
        assert np.array_equal(a.train.labels, b.train.labels)

    def test_different_seeds_differ(self):
        a = make_mnist(train_count=4, val_count=2, seed=1)
        b = make_mnist(train_count=4, val_count=2, seed=2)
        assert not np.array_equal(a.train.samples, b.train.samples)

    def test_labels_in_range(self, cifar10_tiny):
        assert cifar10_tiny.train.labels.min() >= 0
        assert cifar10_tiny.train.labels.max() < 10

    def test_class_structure_is_learnable(self):
        """Samples of the same class must be closer to each other than to other classes."""
        split = make_mnist(train_count=64, val_count=8, seed=5, noise_level=0.05)
        samples, labels = split.train.samples, split.train.labels
        label_a = labels[0]
        same = [s for s, y in zip(samples[1:], labels[1:]) if y == label_a]
        other = [s for s, y in zip(samples[1:], labels[1:]) if y != label_a]
        if same and other:
            distance_same = np.mean([np.abs(samples[0] - s).mean() for s in same])
            distance_other = np.mean([np.abs(samples[0] - s).mean() for s in other])
            assert distance_same < distance_other

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            make_image_dataset("svhn")

    def test_unknown_scale_raises(self):
        with pytest.raises(KeyError):
            make_image_dataset("mnist", scale="huge")

    def test_cifar100_has_100_classes_present(self):
        split = make_cifar100(train_count=400, val_count=10, seed=0)
        assert len(np.unique(split.train.labels)) > 50

    @given(st.integers(1, 16))
    @settings(max_examples=10, deadline=None)
    def test_requested_counts_respected(self, count):
        split = make_mnist(train_count=count, val_count=2, seed=0)
        assert len(split.train) == count

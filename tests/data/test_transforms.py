"""Tests for dataset transforms."""

import numpy as np
import pytest

from repro.data import channel_statistics, flatten_images, normalize, to_float


class TestTransforms:
    def test_normalize_zero_mean_unit_std(self, rng):
        images = rng.standard_normal((8, 3, 4, 4)) * 2 + 5
        mean, std = channel_statistics(images)
        normalised = normalize(images, mean, std)
        new_mean, new_std = channel_statistics(normalised)
        assert np.allclose(new_mean, 0.0, atol=1e-7)
        assert np.allclose(new_std, 1.0, atol=1e-7)

    def test_channel_statistics_shapes(self, rng):
        mean, std = channel_statistics(rng.standard_normal((4, 3, 5, 5)))
        assert mean.shape == (3,) and std.shape == (3,)

    def test_channel_statistics_zero_std_guard(self):
        mean, std = channel_statistics(np.ones((2, 1, 3, 3)))
        assert std[0] == 1.0

    def test_flatten_images(self, rng):
        images = rng.standard_normal((5, 3, 4, 4))
        assert flatten_images(images).shape == (5, 48)

    def test_to_float_scales_integers(self):
        images = np.array([[[[0, 255]]]], dtype=np.uint8)
        converted = to_float(images)
        assert converted.dtype == np.float32
        assert converted.max() == pytest.approx(1.0)

    def test_to_float_keeps_floats(self):
        images = np.ones((1, 1, 2, 2), dtype=np.float64) * 0.5
        assert to_float(images).max() == pytest.approx(0.5)
